//! Precompiled topologies: compile once, analyze many programs.
//!
//! Every call to the legacy [`analyze`](crate::analyze) re-derives
//! per-topology state — routes (a BFS per message on graph topologies),
//! lookahead budgets, the request fingerprint's topology component. A
//! [`CompiledTopology`] hoists that work out of the per-program loop:
//!
//! * the **route closure** — for search-routed (graph) topologies up to
//!   [`MAX_CLOSURE_CELLS`] cells, the minimum-length path between every
//!   cell pair, computed with one BFS per *source* (`n` traversals total,
//!   against one BFS per *message* per request);
//! * the [`AnalysisConfig`] it was compiled against, so lookahead budgets
//!   come from table lookups;
//! * a process-independent content [`fingerprint`](CompiledTopology::fingerprint)
//!   of `(topology, config)`, the key the serving layer shares
//!   compilations under.
//!
//! The type is immutable and cheap to share: wrap it in an [`Arc`] (or use
//! [`CompiledTopology::into_shared`]) and hand clones to as many
//! [`Analyzer`](crate::Analyzer)s, worker threads or batches as needed.

use std::sync::Arc;

use systolic_model::{
    CanonicalHash, CellId, ContentHasher, MessageRoutes, ModelError, Program, Route, Topology,
};

use crate::{AnalysisConfig, Lookahead, LookaheadLimits};

/// Largest cell count for which [`CompiledTopology::compile`] materializes
/// the all-pairs route closure (the closure is `O(n² · path length)`
/// memory). Larger topologies still compile — routing just falls back to
/// per-pair [`Topology::route_cells`].
pub const MAX_CLOSURE_CELLS: usize = 256;

/// An immutable, `Arc`-shareable precompilation of one
/// `(Topology, AnalysisConfig)` pair.
///
/// # Examples
///
/// ```
/// use systolic_core::{Analyzer, AnalysisConfig, CompiledTopology};
/// use systolic_model::{parse_program, Topology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let topology = Topology::linear(2);
/// let config = AnalysisConfig::default();
/// let compiled = CompiledTopology::compile(&topology, &config).into_shared();
/// assert_eq!(compiled.num_cells(), 2);
///
/// // Many programs, one compilation:
/// let analyzer = Analyzer::new(compiled);
/// for reps in 1..4 {
///     let program = parse_program(&format!(
///         "cells 2\nmessage A: c0 -> c1\nprogram c0 {{ W(A)*{reps} }}\nprogram c1 {{ R(A)*{reps} }}\n",
///     ))?;
///     assert!(analyzer.analyze(&program).is_ok());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CompiledTopology {
    topology: Topology,
    config: AnalysisConfig,
    fingerprint: u128,
    /// `paths[from * n + to]`: the route closure, when materialized.
    closure: Option<Vec<Option<Vec<CellId>>>>,
}

impl CompiledTopology {
    /// Compiles a topology against an analysis configuration.
    ///
    /// For graph topologies with at most [`MAX_CLOSURE_CELLS`] cells this
    /// precomputes the all-pairs route closure (one BFS per source cell);
    /// closed-form topologies (linear, ring, mesh) route in `O(path)`
    /// anyway and skip it.
    #[must_use]
    pub fn compile(topology: &Topology, config: &AnalysisConfig) -> Self {
        let fingerprint = Self::fingerprint_of(topology, config);
        let n = topology.num_cells();
        let closure = if topology.uses_search_routing() && n <= MAX_CLOSURE_CELLS {
            let mut paths = Vec::with_capacity(n * n);
            for i in 0..n {
                let from = CellId::new(i as u32);
                paths.extend(topology.routes_from(from).expect("source cell is in range"));
            }
            Some(paths)
        } else {
            None
        };
        CompiledTopology {
            topology: topology.clone(),
            config: config.clone(),
            fingerprint,
            closure,
        }
    }

    /// Wraps this compilation in an [`Arc`] for sharing.
    #[must_use]
    pub fn into_shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// The process-independent content fingerprint of a
    /// `(topology, config)` pair — what [`CompiledTopology::fingerprint`]
    /// returns after compiling, computable without compiling. The serving
    /// layer uses it as the compilation-cache key.
    #[must_use]
    pub fn fingerprint_of(topology: &Topology, config: &AnalysisConfig) -> u128 {
        let mut hasher = ContentHasher::new();
        hasher.write_u8(b'K');
        topology.canonical_hash(&mut hasher);
        config.canonical_hash(&mut hasher);
        hasher.finish()
    }

    /// The topology this compilation captured.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The analysis configuration this compilation captured.
    #[must_use]
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// The content fingerprint of `(topology, config)`.
    #[must_use]
    pub fn fingerprint(&self) -> u128 {
        self.fingerprint
    }

    /// Number of cells in the topology.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.topology.num_cells()
    }

    /// `true` when the all-pairs route closure was materialized.
    #[must_use]
    pub fn has_route_closure(&self) -> bool {
        self.closure.is_some()
    }

    /// The minimum-length route from `from` to `to` — identical to
    /// [`Topology::route_cells`], served from the closure when available.
    ///
    /// # Errors
    ///
    /// * [`ModelError::CellOutOfRange`] if an endpoint does not exist;
    /// * [`ModelError::NoRoute`] if the cells are disconnected (or equal).
    pub fn route(&self, from: CellId, to: CellId) -> Result<Route, ModelError> {
        let n = self.topology.num_cells();
        match &self.closure {
            Some(paths) => {
                for cell in [from, to] {
                    if cell.index() >= n {
                        return Err(ModelError::CellOutOfRange { cell, num_cells: n });
                    }
                }
                match &paths[from.index() * n + to.index()] {
                    Some(path) => Ok(Route::new(path.clone())),
                    None => Err(ModelError::NoRoute { from, to }),
                }
            }
            None => self.topology.route_cells(from, to).map(Route::new),
        }
    }

    /// Routes every declared message of `program` — the precompiled
    /// equivalent of [`MessageRoutes::compute`], with identical results.
    ///
    /// # Errors
    ///
    /// * [`ModelError::CellCountMismatch`] if the program and topology
    ///   disagree on the number of cells;
    /// * any routing error from [`CompiledTopology::route`].
    pub fn routes_for(&self, program: &Program) -> Result<MessageRoutes, ModelError> {
        if program.num_cells() != self.topology.num_cells() {
            return Err(ModelError::CellCountMismatch {
                program: program.num_cells(),
                topology: self.topology.num_cells(),
            });
        }
        let mut routes = Vec::with_capacity(program.num_messages());
        for decl in program.messages() {
            routes.push(self.route(decl.sender(), decl.receiver())?);
        }
        Ok(MessageRoutes::from_routes(routes))
    }

    /// The lookahead budgets the compiled configuration implies for
    /// `program` (whose routes must come from this compilation).
    #[must_use]
    pub fn limits_for(&self, program: &Program, routes: &MessageRoutes) -> LookaheadLimits {
        match &self.config.lookahead {
            Lookahead::Disabled => LookaheadLimits::disabled(program),
            Lookahead::PerQueueCapacity(c) => LookaheadLimits::from_routes(routes, *c),
            Lookahead::Explicit(limits) => limits.clone(),
            Lookahead::Unbounded => LookaheadLimits::unbounded(program),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::parse_program;

    fn c(i: u32) -> CellId {
        CellId::new(i)
    }

    fn diamond() -> Topology {
        Topology::graph(4, [(c(0), c(1)), (c(0), c(2)), (c(1), c(3)), (c(2), c(3))]).unwrap()
    }

    #[test]
    fn compiled_routes_match_direct_routing() {
        for topology in [
            Topology::linear(5),
            Topology::ring(6),
            Topology::mesh(2, 3),
            diamond(),
        ] {
            let compiled = CompiledTopology::compile(&topology, &AnalysisConfig::default());
            assert_eq!(compiled.has_route_closure(), topology.uses_search_routing());
            for i in 0..topology.num_cells() as u32 {
                for j in 0..topology.num_cells() as u32 {
                    let direct = topology.route_cells(c(i), c(j)).map(Route::new);
                    assert_eq!(
                        compiled.route(c(i), c(j)),
                        direct,
                        "route {i}->{j} diverged on {}",
                        topology.spec()
                    );
                }
            }
        }
    }

    #[test]
    fn routes_for_matches_message_routes_compute() {
        let program = parse_program(
            "cells 4\n\
             message A: c0 -> c3\n\
             message B: c3 -> c1\n\
             program c0 { W(A)*2 }\n\
             program c1 { R(B) }\n\
             program c3 { R(A)*2 W(B) }\n",
        )
        .unwrap();
        let topology = diamond();
        let compiled = CompiledTopology::compile(&topology, &AnalysisConfig::default());
        assert_eq!(
            compiled.routes_for(&program).unwrap(),
            MessageRoutes::compute(&program, &topology).unwrap()
        );
    }

    #[test]
    fn route_errors_match_direct_routing() {
        let disconnected = Topology::graph(4, [(c(0), c(1)), (c(2), c(3))]).unwrap();
        let compiled = CompiledTopology::compile(&disconnected, &AnalysisConfig::default());
        assert!(matches!(
            compiled.route(c(0), c(3)),
            Err(ModelError::NoRoute { .. })
        ));
        assert!(matches!(
            compiled.route(c(1), c(1)),
            Err(ModelError::NoRoute { .. })
        ));
        assert!(matches!(
            compiled.route(c(0), c(9)),
            Err(ModelError::CellOutOfRange { .. })
        ));

        let program = parse_program(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\n",
        )
        .unwrap();
        let three = CompiledTopology::compile(&Topology::linear(3), &AnalysisConfig::default());
        assert!(matches!(
            three.routes_for(&program),
            Err(ModelError::CellCountMismatch { .. })
        ));
    }

    #[test]
    fn fingerprint_covers_topology_and_config() {
        let base = CompiledTopology::compile(&Topology::linear(4), &AnalysisConfig::default());
        assert_eq!(
            base.fingerprint(),
            CompiledTopology::fingerprint_of(&Topology::linear(4), &AnalysisConfig::default())
        );
        let other_topology =
            CompiledTopology::compile(&Topology::ring(4), &AnalysisConfig::default());
        assert_ne!(base.fingerprint(), other_topology.fingerprint());
        let other_config = CompiledTopology::compile(
            &Topology::linear(4),
            &AnalysisConfig {
                queues_per_interval: 2,
                ..Default::default()
            },
        );
        assert_ne!(base.fingerprint(), other_config.fingerprint());
    }

    #[test]
    fn limits_follow_the_compiled_config() {
        let program = parse_program(
            "cells 3\nmessage A: c0 -> c2\nprogram c0 { W(A) }\nprogram c2 { R(A) }\n",
        )
        .unwrap();
        let topology = Topology::linear(3);
        let capacity = AnalysisConfig {
            lookahead: Lookahead::PerQueueCapacity(2),
            queues_per_interval: 1,
        };
        let compiled = CompiledTopology::compile(&topology, &capacity);
        let routes = compiled.routes_for(&program).unwrap();
        let limits = compiled.limits_for(&program, &routes);
        // A crosses two intervals at capacity 2 => budget 4.
        assert_eq!(limits.limit(systolic_model::MessageId::new(0)), Some(4));
    }
}
