//! Stable binary codec shared by the JSONL wire and the disk snapshot.
//!
//! Every persisted or transmitted analysis artifact — labels, routes,
//! diagnostics, errors, whole [`CommPlan`]s — is expressed once here as a
//! tagged-field encoding, so the snapshot tier and the wire responses can
//! never drift: both are projections of the same [`Encode`]/[`Decode`]
//! implementations and the same stable-string vocabulary
//! ([`labeling_method_str`], [`core_error_kind`],
//! [`DiagnosticCode::as_str`](crate::DiagnosticCode::as_str), …).
//!
//! # Wire shape
//!
//! A value is a flat sequence of *fields*. Each field is
//!
//! ```text
//! tag: uvarint   len: uvarint   payload: len bytes
//! ```
//!
//! with LEB128 unsigned varints. Nested structs recurse: their payload is
//! itself a field sequence. Repeated values (labels of a labeling, cells
//! of a route) repeat the same tag. `u128` fingerprints are 16-byte
//! little-endian payloads; signed integers use zigzag varints; strings are
//! UTF-8 payloads.
//!
//! # Forward-compatibility rules
//!
//! - **Unknown field tags are skipped.** A decoder only queries the tags
//!   it knows; anything else in the field sequence is length-delimited and
//!   ignored, so a newer writer can add fields without breaking an older
//!   reader.
//! - **Enums are closed.** Variant discriminants it does not recognise are
//!   rejected with [`CodecError::Invalid`] — an unknown variant cannot be
//!   safely substituted, only refused.
//! - **Corrupt input is a typed error, never a panic.** Every length is
//!   checked against the bytes actually available before anything is
//!   sliced or allocated ([`CodecError::OversizedLength`]), varints are
//!   bounded ([`CodecError::VarintOverflow`]), and every domain invariant
//!   (positive labels, ≥ 2 distinct route cells, plan fingerprint
//!   integrity) is re-validated on decode so that hostile bytes can never
//!   reach a panicking constructor.
//! - **Allocations are bounded by the input.** Decoders never trust a
//!   declared count that exceeds the remaining payload, so a short
//!   malicious input cannot request a huge buffer.

use std::fmt;
use std::sync::Arc;

use systolic_model::{
    parse_program, program_to_text, CellId, Hop, MessageId, MessageRoutes, ModelError, Program,
    Route, Topology,
};

use crate::diagnostics::{Diagnostic, DiagnosticCode, Severity};
use crate::error::CoreError;
use crate::label::Label;
use crate::labeling::Labeling;
use crate::limits::LookaheadLimits;
use crate::pipeline::{AnalysisConfig, LabelingMethod, Lookahead};
use crate::plan::CommPlan;
use crate::requirements::QueueRequirements;
use crate::CompetingSets;

/// Typed decode failure. The decoder rejects malformed input with one of
/// these — it never panics and never partially constructs a value.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum CodecError {
    /// The input ended before a declared field or varint was complete.
    Truncated,
    /// A length prefix declared more bytes than the input holds; rejected
    /// before any allocation of that size is attempted.
    OversizedLength {
        /// Bytes the length prefix claimed.
        declared: u64,
        /// Bytes actually remaining in the input.
        available: usize,
    },
    /// A varint ran past its 10-byte maximum.
    VarintOverflow,
    /// A required field was absent from the field sequence.
    MissingField {
        /// Tag of the missing field.
        tag: u32,
    },
    /// The bytes parsed but violated a domain invariant (bad enum
    /// discriminant, non-positive label, fingerprint mismatch, …).
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::OversizedLength {
                declared,
                available,
            } => write!(
                f,
                "length prefix declares {declared} bytes but only {available} remain"
            ),
            CodecError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            CodecError::MissingField { tag } => write!(f, "required field {tag} missing"),
            CodecError::Invalid(why) => write!(f, "invalid encoding: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------------
// Varint primitives
// ---------------------------------------------------------------------------

fn write_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn read_uvarint(input: &mut &[u8]) -> Result<u64, CodecError> {
    let mut value: u64 = 0;
    for (i, &byte) in input.iter().enumerate() {
        if i == 10 {
            return Err(CodecError::VarintOverflow);
        }
        let low = u64::from(byte & 0x7f);
        // The 10th byte may only contribute the final bit of a u64.
        if i == 9 && byte > 0x01 {
            return Err(CodecError::VarintOverflow);
        }
        value |= low << (7 * i);
        if byte & 0x80 == 0 {
            *input = &input[i + 1..];
            return Ok(value);
        }
    }
    Err(CodecError::Truncated)
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------------------
// Field writer / reader
// ---------------------------------------------------------------------------

/// Accumulates the tagged fields of one struct being encoded.
///
/// Writers append fields in tag order by convention, but readers do not
/// rely on ordering; repeated fields (same tag) keep their write order.
#[derive(Default, Debug)]
pub struct FieldWriter {
    buf: Vec<u8>,
    scratch: Vec<u8>,
}

impl FieldWriter {
    fn field(&mut self, tag: u32, payload: &[u8]) {
        write_uvarint(&mut self.buf, u64::from(tag));
        write_uvarint(&mut self.buf, payload.len() as u64);
        self.buf.extend_from_slice(payload);
    }

    /// Appends an unsigned-varint field.
    pub fn put_u64(&mut self, tag: u32, v: u64) {
        self.scratch.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        write_uvarint(&mut scratch, v);
        self.field(tag, &scratch);
        self.scratch = scratch;
    }

    /// Appends a zigzag-varint field.
    pub fn put_i64(&mut self, tag: u32, v: i64) {
        self.put_u64(tag, zigzag(v));
    }

    /// Appends a 16-byte little-endian `u128` field (fingerprints).
    pub fn put_u128(&mut self, tag: u32, v: u128) {
        self.field(tag, &v.to_le_bytes());
    }

    /// Appends a UTF-8 string field.
    pub fn put_str(&mut self, tag: u32, s: &str) {
        self.field(tag, s.as_bytes());
    }

    /// Appends a raw byte field.
    pub fn put_bytes(&mut self, tag: u32, bytes: &[u8]) {
        self.field(tag, bytes);
    }

    /// Appends a nested struct field (its payload is the child's own
    /// field sequence).
    pub fn put_nested(&mut self, tag: u32, value: &impl Encode) {
        let mut child = FieldWriter::default();
        value.encode(&mut child);
        self.field(tag, &child.buf);
    }

    /// The encoded field sequence.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Parsed view of one struct's field sequence.
///
/// Parsing validates every length prefix against the remaining input
/// before slicing, so a `FieldReader` can be built from hostile bytes
/// without allocating more than the input itself. Tags the caller never
/// queries are the forward-compat skip path.
#[derive(Debug)]
pub struct FieldReader<'a> {
    fields: Vec<(u32, &'a [u8])>,
}

impl<'a> FieldReader<'a> {
    /// Splits `bytes` into `(tag, payload)` fields, rejecting truncated or
    /// oversized prefixes with a typed error.
    pub fn parse(mut bytes: &'a [u8]) -> Result<Self, CodecError> {
        let mut fields = Vec::new();
        while !bytes.is_empty() {
            let tag = read_uvarint(&mut bytes)?;
            let tag = u32::try_from(tag)
                .map_err(|_| CodecError::Invalid(format!("field tag {tag} exceeds u32")))?;
            let len = read_uvarint(&mut bytes)?;
            if len > bytes.len() as u64 {
                return Err(CodecError::OversizedLength {
                    declared: len,
                    available: bytes.len(),
                });
            }
            let (payload, rest) = bytes.split_at(len as usize);
            fields.push((tag, payload));
            bytes = rest;
        }
        Ok(FieldReader { fields })
    }

    /// First payload under `tag`, or [`CodecError::MissingField`].
    pub fn req(&self, tag: u32) -> Result<&'a [u8], CodecError> {
        self.opt(tag).ok_or(CodecError::MissingField { tag })
    }

    /// First payload under `tag`, if present.
    #[must_use]
    pub fn opt(&self, tag: u32) -> Option<&'a [u8]> {
        self.fields
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, payload)| *payload)
    }

    /// All payloads under `tag`, in write order (repeated fields).
    pub fn all(&self, tag: u32) -> impl Iterator<Item = &'a [u8]> + '_ {
        self.fields
            .iter()
            .filter(move |(t, _)| *t == tag)
            .map(|(_, payload)| *payload)
    }
}

// ---------------------------------------------------------------------------
// Payload decoding helpers
// ---------------------------------------------------------------------------

/// Decodes a whole-payload unsigned varint (trailing bytes are rejected).
pub fn decode_u64(payload: &[u8]) -> Result<u64, CodecError> {
    let mut input = payload;
    let v = read_uvarint(&mut input)?;
    if !input.is_empty() {
        return Err(CodecError::Invalid(
            "trailing bytes after varint".to_owned(),
        ));
    }
    Ok(v)
}

/// Decodes a whole-payload zigzag varint.
pub fn decode_i64(payload: &[u8]) -> Result<i64, CodecError> {
    Ok(unzigzag(decode_u64(payload)?))
}

/// Decodes a 16-byte little-endian `u128` payload.
pub fn decode_u128(payload: &[u8]) -> Result<u128, CodecError> {
    let bytes: [u8; 16] = payload
        .try_into()
        .map_err(|_| CodecError::Invalid(format!("u128 payload is {} bytes", payload.len())))?;
    Ok(u128::from_le_bytes(bytes))
}

/// Decodes a UTF-8 string payload.
pub fn decode_str(payload: &[u8]) -> Result<&str, CodecError> {
    std::str::from_utf8(payload).map_err(|_| CodecError::Invalid("non-UTF-8 string".to_owned()))
}

/// Decodes a nested struct payload.
pub fn decode_nested<T: Decode>(payload: &[u8]) -> Result<T, CodecError> {
    T::decode(&FieldReader::parse(payload)?)
}

/// Decodes a `u64` payload that must fit in `usize`.
fn decode_usize(payload: &[u8]) -> Result<usize, CodecError> {
    let v = decode_u64(payload)?;
    usize::try_from(v).map_err(|_| CodecError::Invalid(format!("{v} exceeds usize")))
}

fn decode_u32(payload: &[u8]) -> Result<u32, CodecError> {
    let v = decode_u64(payload)?;
    u32::try_from(v).map_err(|_| CodecError::Invalid(format!("{v} exceeds u32")))
}

// ---------------------------------------------------------------------------
// Traits + top-level entry points
// ---------------------------------------------------------------------------

/// A type with a stable tagged-field encoding.
///
/// Implementations write each field under an explicit tag that is part of
/// the format contract: tags are never reused with a different meaning,
/// and new fields get new tags so old decoders skip them.
pub trait Encode {
    /// Writes this value's fields into `w`.
    fn encode(&self, w: &mut FieldWriter);
}

/// A type decodable from its tagged-field encoding.
///
/// Decoders must query fields by tag (unknown tags are thereby skipped),
/// re-validate every domain invariant, and surface malformed input as a
/// [`CodecError`] — never a panic.
pub trait Decode: Sized {
    /// Reads this value back out of a parsed field sequence.
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError>;
}

/// Encodes `value` to a standalone byte buffer.
#[must_use]
pub fn encode_to_vec<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut w = FieldWriter::default();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes a value from a standalone byte buffer.
pub fn decode_from_slice<T: Decode>(bytes: &[u8]) -> Result<T, CodecError> {
    T::decode(&FieldReader::parse(bytes)?)
}

// ---------------------------------------------------------------------------
// Stable-string vocabulary shared with the JSONL wire
// ---------------------------------------------------------------------------

/// Stable wire/disk name of a [`LabelingMethod`] (`"section6"` /
/// `"constraint-solver"`), shared by the JSONL responses and the snapshot.
#[must_use]
pub fn labeling_method_str(method: LabelingMethod) -> &'static str {
    match method {
        LabelingMethod::Section6 => "section6",
        LabelingMethod::ConstraintSolver => "constraint-solver",
    }
}

/// Inverse of [`labeling_method_str`].
#[must_use]
pub fn labeling_method_from_str(s: &str) -> Option<LabelingMethod> {
    match s {
        "section6" => Some(LabelingMethod::Section6),
        "constraint-solver" => Some(LabelingMethod::ConstraintSolver),
        _ => None,
    }
}

/// Inverse of [`Severity::as_str`].
#[must_use]
pub fn severity_from_str(s: &str) -> Option<Severity> {
    match s {
        "info" => Some(Severity::Info),
        "warning" => Some(Severity::Warning),
        "error" => Some(Severity::Error),
        _ => None,
    }
}

/// Inverse of [`DiagnosticCode::as_str`].
#[must_use]
pub fn diagnostic_code_from_str(s: &str) -> Option<DiagnosticCode> {
    match s {
        "E-CELL-COUNT" => Some(DiagnosticCode::CellCountMismatch),
        "E-ROUTE" => Some(DiagnosticCode::RouteFailure),
        "E-MODEL" => Some(DiagnosticCode::ModelInvalid),
        "E-DEADLOCK" => Some(DiagnosticCode::Deadlock),
        "E-LABEL-CONFLICT" => Some(DiagnosticCode::LabelConflict),
        "E-INCONSISTENT-LABELING" => Some(DiagnosticCode::InconsistentLabeling),
        "E-INFEASIBLE" => Some(DiagnosticCode::Infeasible),
        "W-SECTION6-FALLBACK" => Some(DiagnosticCode::Section6Fallback),
        "I-EXTENSION-CANDIDATE" => Some(DiagnosticCode::ExtensionCandidate),
        _ => None,
    }
}

/// Stable `error_kind` string of a [`CoreError`], shared by the JSONL
/// `"error_kind"` member and the snapshot's rejection records.
#[must_use]
pub fn core_error_kind(error: &CoreError) -> &'static str {
    match error {
        CoreError::Model(_) => "model",
        CoreError::ProgramDeadlocked { .. } => "deadlocked",
        CoreError::LabelConflict { .. } => "label-conflict",
        CoreError::InconsistentLabeling { .. } => "inconsistent-labeling",
        CoreError::Infeasible { .. } => "infeasible",
    }
}

// ---------------------------------------------------------------------------
// Label / Labeling
// ---------------------------------------------------------------------------

impl Encode for Label {
    fn encode(&self, w: &mut FieldWriter) {
        w.put_i64(1, self.numerator());
        w.put_i64(2, self.denominator());
    }
}

impl Decode for Label {
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError> {
        let num = decode_i64(r.req(1)?)?;
        let den = decode_i64(r.req(2)?)?;
        // Label::ratio panics on den == 0 or value <= 0; re-validate the
        // type invariant (positive, positive denominator) first.
        if num <= 0 || den <= 0 {
            return Err(CodecError::Invalid(format!(
                "label {num}/{den} is not positive"
            )));
        }
        Ok(Label::ratio(num, den))
    }
}

impl Encode for Labeling {
    fn encode(&self, w: &mut FieldWriter) {
        for (_, label) in self.iter() {
            w.put_nested(1, &label);
        }
    }
}

impl Decode for Labeling {
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError> {
        let labels = r
            .all(1)
            .map(decode_nested::<Label>)
            .collect::<Result<Vec<Label>, CodecError>>()?;
        Ok(Labeling::from_labels(labels))
    }
}

// ---------------------------------------------------------------------------
// Route / MessageRoutes
// ---------------------------------------------------------------------------

impl Encode for Route {
    fn encode(&self, w: &mut FieldWriter) {
        for cell in self.cells() {
            w.put_u64(1, u64::from(cell.as_u32()));
        }
    }
}

impl Decode for Route {
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError> {
        let cells = r
            .all(1)
            .map(|payload| decode_u32(payload).map(CellId::new))
            .collect::<Result<Vec<CellId>, CodecError>>()?;
        // Route::new asserts these; reject bad bytes with a typed error
        // instead of reaching the assertion.
        if cells.len() < 2 {
            return Err(CodecError::Invalid(format!(
                "route has {} cells (needs at least 2)",
                cells.len()
            )));
        }
        if cells.windows(2).any(|pair| pair[0] == pair[1]) {
            return Err(CodecError::Invalid(
                "route repeats a cell consecutively".to_owned(),
            ));
        }
        Ok(Route::new(cells))
    }
}

impl Encode for MessageRoutes {
    fn encode(&self, w: &mut FieldWriter) {
        for (_, route) in self.iter() {
            w.put_nested(1, route);
        }
    }
}

impl Decode for MessageRoutes {
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError> {
        let routes = r
            .all(1)
            .map(decode_nested::<Route>)
            .collect::<Result<Vec<Route>, CodecError>>()?;
        Ok(MessageRoutes::from_routes(routes))
    }
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

impl Encode for Diagnostic {
    fn encode(&self, w: &mut FieldWriter) {
        w.put_str(1, self.code().as_str());
        w.put_str(2, self.severity().as_str());
        w.put_str(3, self.message());
        for m in self.message_ids() {
            w.put_u64(4, u64::from(m.as_u32()));
        }
        for c in self.cell_ids() {
            w.put_u64(5, u64::from(c.as_u32()));
        }
    }
}

impl Decode for Diagnostic {
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError> {
        let code_str = decode_str(r.req(1)?)?;
        let code = diagnostic_code_from_str(code_str)
            .ok_or_else(|| CodecError::Invalid(format!("unknown diagnostic code {code_str:?}")))?;
        let severity_str = decode_str(r.req(2)?)?;
        let severity = severity_from_str(severity_str)
            .ok_or_else(|| CodecError::Invalid(format!("unknown severity {severity_str:?}")))?;
        let message = decode_str(r.req(3)?)?.to_owned();
        let messages = r
            .all(4)
            .map(|payload| decode_u32(payload).map(MessageId::new))
            .collect::<Result<Vec<MessageId>, CodecError>>()?;
        let cells = r
            .all(5)
            .map(|payload| decode_u32(payload).map(CellId::new))
            .collect::<Result<Vec<CellId>, CodecError>>()?;
        Ok(Diagnostic::new(code, message)
            .with_severity(severity)
            .with_messages(messages)
            .with_cells(cells))
    }
}

// ---------------------------------------------------------------------------
// ModelError / CoreError
// ---------------------------------------------------------------------------

/// Discriminant used for `ModelError` variants added after this codec was
/// written (the enum is `#[non_exhaustive]` upstream). Encoding one stores
/// only its display text; decoding it is always an [`CodecError::Invalid`].
const MODEL_ERROR_UNKNOWN: u64 = 1000;

impl Encode for ModelError {
    fn encode(&self, w: &mut FieldWriter) {
        match self {
            ModelError::UnknownCell { name } => {
                w.put_u64(1, 0);
                w.put_str(2, name);
            }
            ModelError::UnknownMessage { name } => {
                w.put_u64(1, 1);
                w.put_str(2, name);
            }
            ModelError::DuplicateMessage { name } => {
                w.put_u64(1, 2);
                w.put_str(2, name);
            }
            ModelError::DuplicateCell { name } => {
                w.put_u64(1, 3);
                w.put_str(2, name);
            }
            ModelError::SelfMessage { message, cell } => {
                w.put_u64(1, 4);
                w.put_u64(2, u64::from(message.as_u32()));
                w.put_u64(3, u64::from(cell.as_u32()));
            }
            ModelError::WriteOutsideSender {
                message,
                cell,
                sender,
            } => {
                w.put_u64(1, 5);
                w.put_u64(2, u64::from(message.as_u32()));
                w.put_u64(3, u64::from(cell.as_u32()));
                w.put_u64(4, u64::from(sender.as_u32()));
            }
            ModelError::ReadOutsideReceiver {
                message,
                cell,
                receiver,
            } => {
                w.put_u64(1, 6);
                w.put_u64(2, u64::from(message.as_u32()));
                w.put_u64(3, u64::from(cell.as_u32()));
                w.put_u64(4, u64::from(receiver.as_u32()));
            }
            ModelError::WordCountMismatch {
                message,
                writes,
                reads,
            } => {
                w.put_u64(1, 7);
                w.put_u64(2, u64::from(message.as_u32()));
                w.put_u64(3, *writes as u64);
                w.put_u64(4, *reads as u64);
            }
            ModelError::CellOutOfRange { cell, num_cells } => {
                w.put_u64(1, 8);
                w.put_u64(2, u64::from(cell.as_u32()));
                w.put_u64(3, *num_cells as u64);
            }
            ModelError::CellCountMismatch { program, topology } => {
                w.put_u64(1, 9);
                w.put_u64(2, *program as u64);
                w.put_u64(3, *topology as u64);
            }
            ModelError::NoRoute { from, to } => {
                w.put_u64(1, 10);
                w.put_u64(2, u64::from(from.as_u32()));
                w.put_u64(3, u64::from(to.as_u32()));
            }
            ModelError::Parse { line, message } => {
                w.put_u64(1, 11);
                w.put_u64(2, *line as u64);
                w.put_str(3, message);
            }
            ModelError::SpecParse {
                token,
                offset,
                message,
            } => {
                w.put_u64(1, 12);
                w.put_str(2, token);
                w.put_u64(3, *offset as u64);
                w.put_str(4, message);
            }
            other => {
                w.put_u64(1, MODEL_ERROR_UNKNOWN);
                w.put_str(2, &other.to_string());
            }
        }
    }
}

impl Decode for ModelError {
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError> {
        let variant = decode_u64(r.req(1)?)?;
        let name =
            |tag: u32| -> Result<String, CodecError> { Ok(decode_str(r.req(tag)?)?.to_owned()) };
        let message_id = |tag: u32| -> Result<MessageId, CodecError> {
            decode_u32(r.req(tag)?).map(MessageId::new)
        };
        let cell_id =
            |tag: u32| -> Result<CellId, CodecError> { decode_u32(r.req(tag)?).map(CellId::new) };
        let count = |tag: u32| -> Result<usize, CodecError> { decode_usize(r.req(tag)?) };
        Ok(match variant {
            0 => ModelError::UnknownCell { name: name(2)? },
            1 => ModelError::UnknownMessage { name: name(2)? },
            2 => ModelError::DuplicateMessage { name: name(2)? },
            3 => ModelError::DuplicateCell { name: name(2)? },
            4 => ModelError::SelfMessage {
                message: message_id(2)?,
                cell: cell_id(3)?,
            },
            5 => ModelError::WriteOutsideSender {
                message: message_id(2)?,
                cell: cell_id(3)?,
                sender: cell_id(4)?,
            },
            6 => ModelError::ReadOutsideReceiver {
                message: message_id(2)?,
                cell: cell_id(3)?,
                receiver: cell_id(4)?,
            },
            7 => ModelError::WordCountMismatch {
                message: message_id(2)?,
                writes: count(3)?,
                reads: count(4)?,
            },
            8 => ModelError::CellOutOfRange {
                cell: cell_id(2)?,
                num_cells: count(3)?,
            },
            9 => ModelError::CellCountMismatch {
                program: count(2)?,
                topology: count(3)?,
            },
            10 => ModelError::NoRoute {
                from: cell_id(2)?,
                to: cell_id(3)?,
            },
            11 => ModelError::Parse {
                line: count(2)?,
                message: name(3)?,
            },
            12 => ModelError::SpecParse {
                token: name(2)?,
                offset: count(3)?,
                message: name(4)?,
            },
            other => {
                return Err(CodecError::Invalid(format!(
                    "unrecognised model error variant {other}"
                )))
            }
        })
    }
}

impl Encode for CoreError {
    fn encode(&self, w: &mut FieldWriter) {
        match self {
            CoreError::Model(inner) => {
                w.put_u64(1, 0);
                w.put_nested(2, inner);
            }
            CoreError::ProgramDeadlocked {
                crossed_words,
                remaining_ops,
            } => {
                w.put_u64(1, 1);
                w.put_u64(2, *crossed_words as u64);
                w.put_u64(3, *remaining_ops as u64);
            }
            CoreError::LabelConflict {
                message,
                lower_bound,
                upper_bound,
            } => {
                w.put_u64(1, 2);
                w.put_u64(2, u64::from(message.as_u32()));
                w.put_nested(3, lower_bound);
                w.put_nested(4, upper_bound);
            }
            CoreError::InconsistentLabeling { violations } => {
                w.put_u64(1, 3);
                w.put_u64(2, *violations as u64);
            }
            CoreError::Infeasible {
                hop,
                required,
                available,
            } => {
                w.put_u64(1, 4);
                w.put_u64(2, u64::from(hop.from().as_u32()));
                w.put_u64(3, u64::from(hop.to().as_u32()));
                w.put_u64(4, *required as u64);
                w.put_u64(5, *available as u64);
            }
        }
    }
}

impl Decode for CoreError {
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError> {
        let variant = decode_u64(r.req(1)?)?;
        Ok(match variant {
            0 => CoreError::Model(decode_nested(r.req(2)?)?),
            1 => CoreError::ProgramDeadlocked {
                crossed_words: decode_usize(r.req(2)?)?,
                remaining_ops: decode_usize(r.req(3)?)?,
            },
            2 => CoreError::LabelConflict {
                message: decode_u32(r.req(2)?).map(MessageId::new)?,
                lower_bound: decode_nested(r.req(3)?)?,
                upper_bound: decode_nested(r.req(4)?)?,
            },
            3 => CoreError::InconsistentLabeling {
                violations: decode_usize(r.req(2)?)?,
            },
            4 => {
                let from = decode_u32(r.req(2)?).map(CellId::new)?;
                let to = decode_u32(r.req(3)?).map(CellId::new)?;
                // Hop::new asserts from != to.
                if from == to {
                    return Err(CodecError::Invalid(format!(
                        "infeasible hop from and to are both cell {from}"
                    )));
                }
                CoreError::Infeasible {
                    hop: Hop::new(from, to),
                    required: decode_usize(r.req(4)?)?,
                    available: decode_usize(r.req(5)?)?,
                }
            }
            other => {
                return Err(CodecError::Invalid(format!(
                    "unrecognised core error variant {other}"
                )))
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Lookahead / LookaheadLimits / AnalysisConfig
// ---------------------------------------------------------------------------

impl Encode for LookaheadLimits {
    fn encode(&self, w: &mut FieldWriter) {
        // One field per entry: payload byte 0 = unlimited (None), byte 1
        // followed by a uvarint = Some(limit). Entry order is message order.
        let mut entry = Vec::new();
        for limit in self.as_table() {
            entry.clear();
            match limit {
                None => entry.push(0u8),
                Some(n) => {
                    entry.push(1u8);
                    write_uvarint(&mut entry, *n as u64);
                }
            }
            w.put_bytes(1, &entry);
        }
    }
}

impl Decode for LookaheadLimits {
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError> {
        let mut table = Vec::new();
        for payload in r.all(1) {
            let (&kind, mut rest) = payload.split_first().ok_or(CodecError::Truncated)?;
            let entry = match kind {
                0 => None,
                1 => {
                    let n = read_uvarint(&mut rest)?;
                    Some(usize::try_from(n).map_err(|_| {
                        CodecError::Invalid(format!("lookahead limit {n} exceeds usize"))
                    })?)
                }
                other => {
                    return Err(CodecError::Invalid(format!(
                        "unrecognised lookahead entry kind {other}"
                    )))
                }
            };
            if !rest.is_empty() {
                return Err(CodecError::Invalid(
                    "trailing bytes after lookahead entry".to_owned(),
                ));
            }
            table.push(entry);
        }
        Ok(LookaheadLimits::from_table(table))
    }
}

impl Encode for Lookahead {
    fn encode(&self, w: &mut FieldWriter) {
        match self {
            Lookahead::Disabled => w.put_u64(1, 0),
            Lookahead::PerQueueCapacity(capacity) => {
                w.put_u64(1, 1);
                w.put_u64(2, *capacity as u64);
            }
            Lookahead::Explicit(limits) => {
                w.put_u64(1, 2);
                w.put_nested(3, limits);
            }
            Lookahead::Unbounded => w.put_u64(1, 3),
        }
    }
}

impl Decode for Lookahead {
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError> {
        let variant = decode_u64(r.req(1)?)?;
        Ok(match variant {
            0 => Lookahead::Disabled,
            1 => Lookahead::PerQueueCapacity(decode_usize(r.req(2)?)?),
            2 => Lookahead::Explicit(decode_nested(r.req(3)?)?),
            3 => Lookahead::Unbounded,
            other => {
                return Err(CodecError::Invalid(format!(
                    "unrecognised lookahead variant {other}"
                )))
            }
        })
    }
}

impl Encode for AnalysisConfig {
    fn encode(&self, w: &mut FieldWriter) {
        w.put_nested(1, &self.lookahead);
        w.put_u64(2, self.queues_per_interval as u64);
    }
}

impl Decode for AnalysisConfig {
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError> {
        Ok(AnalysisConfig {
            lookahead: decode_nested(r.req(1)?)?,
            queues_per_interval: decode_usize(r.req(2)?)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Program / Topology (via their stable text formats)
// ---------------------------------------------------------------------------

impl Encode for Program {
    fn encode(&self, w: &mut FieldWriter) {
        // The canonical text form is the stable encoding
        // (`parse_program(&program_to_text(p)) == p` is a documented,
        // test-locked contract in systolic_model).
        w.put_str(1, &program_to_text(self));
    }
}

impl Decode for Program {
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError> {
        let text = decode_str(r.req(1)?)?;
        parse_program(text).map_err(|e| CodecError::Invalid(format!("program text: {e}")))
    }
}

impl Encode for Topology {
    fn encode(&self, w: &mut FieldWriter) {
        w.put_str(1, &self.spec());
    }
}

impl Decode for Topology {
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError> {
        let spec = decode_str(r.req(1)?)?;
        Topology::from_spec(spec).map_err(|e| CodecError::Invalid(format!("topology spec: {e}")))
    }
}

// ---------------------------------------------------------------------------
// CommPlan
// ---------------------------------------------------------------------------

impl Encode for CommPlan {
    fn encode(&self, w: &mut FieldWriter) {
        // Competing sets and queue requirements are pure functions of the
        // labeling + routes; storing only the inputs plus the plan
        // fingerprint keeps the encoding small and gives decode an
        // end-to-end integrity check.
        w.put_nested(1, self.labeling());
        w.put_nested(2, self.routes());
        w.put_u128(3, self.fingerprint());
    }
}

impl Decode for CommPlan {
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError> {
        let labeling: Labeling = decode_nested(r.req(1)?)?;
        let routes: MessageRoutes = decode_nested(r.req(2)?)?;
        let stored = decode_u128(r.req(3)?)?;
        if labeling.len() != routes.len() {
            return Err(CodecError::Invalid(format!(
                "labeling covers {} messages but routes cover {}",
                labeling.len(),
                routes.len()
            )));
        }
        let competing = CompetingSets::compute(&routes);
        let requirements = QueueRequirements::compute(&competing, &labeling);
        let plan = CommPlan::new(labeling, routes, competing, requirements);
        if plan.fingerprint() != stored {
            return Err(CodecError::Invalid(
                "plan fingerprint mismatch (corrupt or tampered encoding)".to_owned(),
            ));
        }
        Ok(plan)
    }
}

impl<T: Encode> Encode for Arc<T> {
    fn encode(&self, w: &mut FieldWriter) {
        (**self).encode(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::ProgramBuilder;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: &T) {
        let bytes = encode_to_vec(value);
        let back: T = decode_from_slice(&bytes).expect("roundtrip decodes");
        assert_eq!(&back, value);
    }

    #[test]
    fn varint_roundtrip_and_bounds() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            let mut slice = buf.as_slice();
            assert_eq!(read_uvarint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
        // Truncated: continuation bit set, no next byte.
        let mut slice: &[u8] = &[0x80];
        assert_eq!(read_uvarint(&mut slice), Err(CodecError::Truncated));
        // Overflow: 11 continuation bytes.
        let mut slice: &[u8] = &[0x80; 11];
        assert_eq!(read_uvarint(&mut slice), Err(CodecError::VarintOverflow));
        // Overflow: 10th byte carries more than the final u64 bit.
        let mut long = vec![0xffu8; 9];
        long.push(0x02);
        let mut slice = long.as_slice();
        assert_eq!(read_uvarint(&mut slice), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn oversized_length_prefix_is_typed_error() {
        let mut bytes = Vec::new();
        write_uvarint(&mut bytes, 1); // tag
        write_uvarint(&mut bytes, 1 << 40); // declared length far past input
        bytes.push(0);
        match FieldReader::parse(&bytes) {
            Err(CodecError::OversizedLength { declared, .. }) => {
                assert_eq!(declared, 1 << 40);
            }
            other => panic!("expected OversizedLength, got {other:?}"),
        }
    }

    #[test]
    fn unknown_fields_are_skipped() {
        let label = Label::ratio(3, 2);
        let mut w = FieldWriter::default();
        label.encode(&mut w);
        w.put_str(999, "from a future format revision");
        let bytes = w.into_bytes();
        let back: Label = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, label);
    }

    #[test]
    fn missing_field_is_typed_error() {
        let mut w = FieldWriter::default();
        w.put_i64(1, 3); // numerator only, no denominator
        let err = decode_from_slice::<Label>(&w.into_bytes()).unwrap_err();
        assert_eq!(err, CodecError::MissingField { tag: 2 });
    }

    #[test]
    fn non_positive_label_rejected_without_panic() {
        for (num, den) in [(0i64, 1i64), (-3, 2), (3, 0), (3, -2)] {
            let mut w = FieldWriter::default();
            w.put_i64(1, num);
            w.put_i64(2, den);
            let err = decode_from_slice::<Label>(&w.into_bytes()).unwrap_err();
            assert!(matches!(err, CodecError::Invalid(_)), "{num}/{den}: {err}");
        }
    }

    #[test]
    fn degenerate_route_rejected_without_panic() {
        // One cell only.
        let mut w = FieldWriter::default();
        w.put_u64(1, 0);
        assert!(matches!(
            decode_from_slice::<Route>(&w.into_bytes()),
            Err(CodecError::Invalid(_))
        ));
        // Consecutive repeat.
        let mut w = FieldWriter::default();
        w.put_u64(1, 4);
        w.put_u64(1, 4);
        assert!(matches!(
            decode_from_slice::<Route>(&w.into_bytes()),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn label_and_labeling_roundtrip() {
        roundtrip(&Label::integer(7));
        roundtrip(&Label::ratio(22, 8));
        roundtrip(&Labeling::from_labels(vec![
            Label::integer(1),
            Label::ratio(3, 2),
            Label::integer(5),
        ]));
        roundtrip(&Labeling::from_labels(Vec::new()));
    }

    #[test]
    fn route_sets_roundtrip() {
        let route = |cells: &[u32]| Route::new(cells.iter().map(|&c| CellId::new(c)).collect());
        roundtrip(&route(&[0, 1, 2, 1]));
        roundtrip(&MessageRoutes::from_routes(vec![
            route(&[0, 1]),
            route(&[2, 1, 0]),
        ]));
    }

    #[test]
    fn diagnostic_roundtrip() {
        let plain = Diagnostic::new(DiagnosticCode::Deadlock, "stuck after 3 words");
        roundtrip(&plain);
        let rich = Diagnostic::new(DiagnosticCode::Section6Fallback, "wedged; solver used")
            .with_severity(Severity::Warning)
            .with_messages([MessageId::new(0), MessageId::new(4)])
            .with_cells([CellId::new(2)]);
        roundtrip(&rich);
    }

    #[test]
    fn unknown_diagnostic_code_rejected() {
        let mut w = FieldWriter::default();
        w.put_str(1, "E-FUTURE-CODE");
        w.put_str(2, "error");
        w.put_str(3, "msg");
        assert!(matches!(
            decode_from_slice::<Diagnostic>(&w.into_bytes()),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn model_error_all_variants_roundtrip() {
        let m = MessageId::new(3);
        let c = CellId::new(1);
        let variants = vec![
            ModelError::UnknownCell { name: "p9".into() },
            ModelError::UnknownMessage { name: "X".into() },
            ModelError::DuplicateMessage { name: "A".into() },
            ModelError::DuplicateCell { name: "c0".into() },
            ModelError::SelfMessage {
                message: m,
                cell: c,
            },
            ModelError::WriteOutsideSender {
                message: m,
                cell: c,
                sender: CellId::new(2),
            },
            ModelError::ReadOutsideReceiver {
                message: m,
                cell: c,
                receiver: CellId::new(5),
            },
            ModelError::WordCountMismatch {
                message: m,
                writes: 4,
                reads: 2,
            },
            ModelError::CellOutOfRange {
                cell: CellId::new(9),
                num_cells: 4,
            },
            ModelError::CellCountMismatch {
                program: 4,
                topology: 9,
            },
            ModelError::NoRoute {
                from: c,
                to: CellId::new(3),
            },
            ModelError::Parse {
                line: 7,
                message: "bad token".into(),
            },
            ModelError::SpecParse {
                token: "mesh(".into(),
                offset: 3,
                message: "unclosed".into(),
            },
        ];
        for v in &variants {
            roundtrip(v);
        }
    }

    #[test]
    fn core_error_all_variants_roundtrip() {
        let variants = vec![
            CoreError::Model(ModelError::UnknownCell { name: "q".into() }),
            CoreError::ProgramDeadlocked {
                crossed_words: 12,
                remaining_ops: 3,
            },
            CoreError::LabelConflict {
                message: MessageId::new(2),
                lower_bound: Label::ratio(5, 2),
                upper_bound: Label::integer(2),
            },
            CoreError::InconsistentLabeling { violations: 4 },
            CoreError::Infeasible {
                hop: Hop::new(CellId::new(0), CellId::new(1)),
                required: 3,
                available: 1,
            },
        ];
        for v in &variants {
            roundtrip(v);
        }
    }

    #[test]
    fn unknown_enum_variant_rejected() {
        let mut w = FieldWriter::default();
        w.put_u64(1, 57);
        let bytes = w.into_bytes();
        assert!(matches!(
            decode_from_slice::<CoreError>(&bytes),
            Err(CodecError::Invalid(_))
        ));
        assert!(matches!(
            decode_from_slice::<ModelError>(&bytes),
            Err(CodecError::Invalid(_))
        ));
        assert!(matches!(
            decode_from_slice::<Lookahead>(&bytes),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn degenerate_infeasible_hop_rejected() {
        let mut w = FieldWriter::default();
        w.put_u64(1, 4);
        w.put_u64(2, 3);
        w.put_u64(3, 3); // from == to would panic in Hop::new
        w.put_u64(4, 1);
        w.put_u64(5, 0);
        assert!(matches!(
            decode_from_slice::<CoreError>(&w.into_bytes()),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn config_roundtrip_every_lookahead_mode() {
        for lookahead in [
            Lookahead::Disabled,
            Lookahead::PerQueueCapacity(8),
            Lookahead::Explicit(LookaheadLimits::from_table(vec![None, Some(0), Some(17)])),
            Lookahead::Unbounded,
        ] {
            roundtrip(&lookahead);
            roundtrip(&AnalysisConfig {
                lookahead: lookahead.clone(),
                queues_per_interval: 3,
            });
        }
    }

    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new(3);
        b.message("A", 0, 2).unwrap();
        b.write_n(0, "A", 2).unwrap();
        b.read_n(2, "A", 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn program_and_topology_roundtrip() {
        roundtrip(&tiny_program());
        roundtrip(&Topology::ring(5));
        roundtrip(&Topology::mesh(3, 4));
    }

    #[test]
    fn plan_roundtrip_with_integrity_check() {
        let program = tiny_program();
        let topology = Topology::ring(3);
        let analysis = crate::Analyzer::for_topology(&topology, &AnalysisConfig::default())
            .analyze(&program)
            .expect("tiny program certifies");
        let plan = analysis.into_plan();
        let bytes = encode_to_vec(&plan);
        let back: CommPlan = decode_from_slice(&bytes).unwrap();
        assert_eq!(back.fingerprint(), plan.fingerprint());
        assert_eq!(back.labeling(), plan.labeling());

        // Flip one payload byte anywhere: either a typed parse error or a
        // fingerprint mismatch, never a panic or a silently different plan.
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            if let Ok(decoded) = decode_from_slice::<CommPlan>(&corrupt) {
                assert_eq!(
                    decoded.fingerprint(),
                    plan.fingerprint(),
                    "byte {i}: accepted plan must carry the stored fingerprint"
                );
            }
        }
    }

    #[test]
    fn stable_strings_invert() {
        for method in [LabelingMethod::Section6, LabelingMethod::ConstraintSolver] {
            assert_eq!(
                labeling_method_from_str(labeling_method_str(method)),
                Some(method)
            );
        }
        for severity in [Severity::Info, Severity::Warning, Severity::Error] {
            assert_eq!(severity_from_str(severity.as_str()), Some(severity));
        }
        for code in [
            DiagnosticCode::CellCountMismatch,
            DiagnosticCode::RouteFailure,
            DiagnosticCode::ModelInvalid,
            DiagnosticCode::Deadlock,
            DiagnosticCode::LabelConflict,
            DiagnosticCode::InconsistentLabeling,
            DiagnosticCode::Infeasible,
            DiagnosticCode::Section6Fallback,
            DiagnosticCode::ExtensionCandidate,
        ] {
            assert_eq!(diagnostic_code_from_str(code.as_str()), Some(code));
        }
        assert_eq!(labeling_method_from_str("futuristic"), None);
        assert_eq!(severity_from_str("fatal"), None);
        assert_eq!(diagnostic_code_from_str("E-FUTURE"), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// splitmix64: expands one generated seed into a deterministic byte /
    /// value stream (the vendored proptest shim has no collection
    /// strategies, so variable-length inputs are derived from a seed).
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn label_from(state: &mut u64) -> Label {
        let num = 1 + (mix(state) % 1_000) as i64;
        let den = 1 + (mix(state) % 1_000) as i64;
        Label::ratio(num, den)
    }

    fn labeling_from(len: usize, state: &mut u64) -> Labeling {
        Labeling::from_labels((0..len).map(|_| label_from(state)).collect())
    }

    const ALL_CODES: [DiagnosticCode; 9] = [
        DiagnosticCode::CellCountMismatch,
        DiagnosticCode::RouteFailure,
        DiagnosticCode::ModelInvalid,
        DiagnosticCode::Deadlock,
        DiagnosticCode::LabelConflict,
        DiagnosticCode::InconsistentLabeling,
        DiagnosticCode::Infeasible,
        DiagnosticCode::Section6Fallback,
        DiagnosticCode::ExtensionCandidate,
    ];

    proptest! {
        #[test]
        fn label_roundtrips(parts in (1i64..=1_000_000, 1i64..=1_000_000)) {
            let (num, den) = parts;
            let label = Label::ratio(num, den);
            let back: Label = decode_from_slice(&encode_to_vec(&label)).unwrap();
            prop_assert_eq!(back, label);
        }

        #[test]
        fn labeling_roundtrips(parts in (0usize..16, any::<u64>())) {
            let (len, seed) = parts;
            let mut state = seed;
            let labeling = labeling_from(len, &mut state);
            let back: Labeling = decode_from_slice(&encode_to_vec(&labeling)).unwrap();
            prop_assert_eq!(back, labeling);
        }

        #[test]
        fn diagnostic_roundtrips(
            parts in (0usize..9, 0usize..3, 0usize..8, any::<u64>())
        ) {
            let (code_idx, severity_idx, ids, seed) = parts;
            let mut state = seed;
            let severity = [Severity::Info, Severity::Warning, Severity::Error][severity_idx];
            let diagnostic = Diagnostic::new(
                ALL_CODES[code_idx],
                format!("generated diagnostic {:#x}", mix(&mut state)),
            )
            .with_severity(severity)
            .with_messages((0..ids).map(|_| MessageId::new((mix(&mut state) % 500) as u32)))
            .with_cells((0..ids).map(|_| CellId::new((mix(&mut state) % 500) as u32)));
            let back: Diagnostic = decode_from_slice(&encode_to_vec(&diagnostic)).unwrap();
            prop_assert_eq!(back, diagnostic);
        }

        #[test]
        fn core_error_roundtrips(parts in (0usize..5, any::<u64>())) {
            let (variant, seed) = parts;
            let mut state = seed;
            let error = match variant {
                0 => CoreError::Model(ModelError::UnknownCell {
                    name: format!("cell-{}", mix(&mut state) % 1_000),
                }),
                1 => CoreError::ProgramDeadlocked {
                    crossed_words: (mix(&mut state) % 10_000) as usize,
                    remaining_ops: (mix(&mut state) % 10_000) as usize,
                },
                2 => CoreError::LabelConflict {
                    message: MessageId::new((mix(&mut state) % 500) as u32),
                    lower_bound: label_from(&mut state),
                    upper_bound: label_from(&mut state),
                },
                3 => CoreError::InconsistentLabeling {
                    violations: 1 + (mix(&mut state) % 1_000) as usize,
                },
                _ => {
                    let from = (mix(&mut state) % 500) as u32;
                    let delta = 1 + (mix(&mut state) % 500) as u32;
                    CoreError::Infeasible {
                        hop: Hop::new(CellId::new(from), CellId::new(from + delta)),
                        required: (mix(&mut state) % 64) as usize,
                        available: (mix(&mut state) % 64) as usize,
                    }
                }
            };
            let back: CoreError = decode_from_slice(&encode_to_vec(&error)).unwrap();
            prop_assert_eq!(back, error);
        }

        #[test]
        fn arbitrary_bytes_never_panic(parts in (0usize..256, any::<u64>())) {
            let (len, seed) = parts;
            // Decoding hostile bytes must produce Ok or a typed error —
            // assertions inside domain constructors must be unreachable.
            let mut state = seed;
            let bytes: Vec<u8> = (0..len).map(|_| (mix(&mut state) & 0xff) as u8).collect();
            let _ = decode_from_slice::<Label>(&bytes);
            let _ = decode_from_slice::<Labeling>(&bytes);
            let _ = decode_from_slice::<Route>(&bytes);
            let _ = decode_from_slice::<Diagnostic>(&bytes);
            let _ = decode_from_slice::<CoreError>(&bytes);
            let _ = decode_from_slice::<AnalysisConfig>(&bytes);
            let _ = decode_from_slice::<CommPlan>(&bytes);
        }
    }
}
