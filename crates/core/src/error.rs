//! Error types for the analysis pipeline.

use core::fmt;

use systolic_model::{Hop, MessageId, ModelError};

use crate::Label;

/// Errors produced by the deadlock-avoidance analysis.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A model-layer error (routing, validation, …).
    Model(ModelError),
    /// The program is deadlocked: the crossing-off procedure stalled with
    /// operations remaining (paper, Section 3.2).
    ProgramDeadlocked {
        /// Words successfully crossed off before the stall.
        crossed_words: usize,
        /// Read/write operations left un-crossed.
        remaining_ops: usize,
    },
    /// The labeling scheme could not find a consistent label for a message:
    /// the lower bound from past accesses exceeds the upper bound from
    /// already-labeled future accesses.
    LabelConflict {
        /// The message that could not be labeled.
        message: MessageId,
        /// Required to be exceeded (label of latest past access).
        lower_bound: Label,
        /// Required not to be reached (smallest labeled future access).
        upper_bound: Label,
    },
    /// The Section 6 scheme finished but its labeling violates the
    /// consistency definition — rules 1c/1d assign labels to messages whose
    /// own ordering constraints are only discovered later, which the
    /// literal scheme never re-checks. (The constraint-solving scheme,
    /// [`label_messages_robust`](crate::label_messages_robust), is immune.)
    InconsistentLabeling {
        /// Number of per-cell ordering violations found.
        violations: usize,
    },
    /// Theorem 1 assumption (ii) fails: an interval does not have enough
    /// queues for the simultaneous-assignment rule.
    Infeasible {
        /// The directed interval crossing that is short of queues.
        hop: Hop,
        /// Queues needed (largest same-label competing group).
        required: usize,
        /// Queues available on the interval.
        available: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::ProgramDeadlocked {
                crossed_words,
                remaining_ops,
            } => write!(
                f,
                "program is deadlocked: crossing-off stalled after {crossed_words} words \
                 with {remaining_ops} operations remaining"
            ),
            CoreError::LabelConflict {
                message,
                lower_bound,
                upper_bound,
            } => write!(
                f,
                "no consistent label for {message}: must exceed {lower_bound} \
                 yet stay below {upper_bound}"
            ),
            CoreError::InconsistentLabeling { violations } => write!(
                f,
                "the section 6 labeling scheme produced {violations} consistency violations"
            ),
            CoreError::Infeasible {
                hop,
                required,
                available,
            } => write!(
                f,
                "interval crossing {hop} needs {required} queues for compatible \
                 assignment but only {available} are available"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::CellId;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn error_is_send_sync() {
        assert_send_sync::<CoreError>();
    }

    #[test]
    fn displays_render() {
        let samples = vec![
            CoreError::Model(ModelError::UnknownCell { name: "x".into() }),
            CoreError::ProgramDeadlocked {
                crossed_words: 3,
                remaining_ops: 4,
            },
            CoreError::LabelConflict {
                message: MessageId::new(1),
                lower_bound: Label::integer(3),
                upper_bound: Label::integer(2),
            },
            CoreError::Infeasible {
                hop: Hop::new(CellId::new(0), CellId::new(1)),
                required: 2,
                available: 1,
            },
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn source_chains_model_error() {
        use std::error::Error as _;
        let e = CoreError::Model(ModelError::UnknownCell { name: "x".into() });
        assert!(e.source().is_some());
        let e = CoreError::ProgramDeadlocked {
            crossed_words: 0,
            remaining_ops: 1,
        };
        assert!(e.source().is_none());
    }
}
