//! Independent consistency checking for labelings (paper, Section 5 step 1).
//!
//! "The labeling must be consistent in the sense that each cell program will
//! write to or read from messages with nondecreasing labels." This module
//! checks that property directly against the program text, independently of
//! how the labeling was produced — the property-based tests use it to verify
//! the Section 6 scheme.

use systolic_model::{CellId, MessageId, Program};

use crate::{Label, Labeling};

/// One violation of label consistency: a cell accessed a smaller label after
/// a larger one.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConsistencyViolation {
    /// The offending cell.
    pub cell: CellId,
    /// Position (op index) of the *earlier* access with the larger label.
    pub earlier_pos: usize,
    /// The earlier access's message.
    pub earlier_message: MessageId,
    /// Its label.
    pub earlier_label: Label,
    /// Position of the later access with the smaller label.
    pub later_pos: usize,
    /// The later access's message.
    pub later_message: MessageId,
    /// Its label.
    pub later_label: Label,
}

/// Checks that `labeling` is consistent for `program`.
///
/// Returns every violation found (empty = consistent). Each cell reports at
/// most one violation per descending step, against the running maximum.
///
/// # Examples
///
/// ```
/// use systolic_core::{check_consistency, Label, Labeling};
/// use systolic_model::parse_program;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program(
///     "cells 2\n\
///      message A: c0 -> c1\n\
///      message B: c0 -> c1\n\
///      program c0 { W(A) W(B) }\n\
///      program c1 { R(A) R(B) }\n",
/// )?;
/// // A=2, B=1 is inconsistent: both cells access 2 then 1.
/// let bad = Labeling::from_labels(vec![Label::integer(2), Label::integer(1)]);
/// assert_eq!(check_consistency(&p, &bad).len(), 2);
/// // A=1, B=2 is consistent.
/// let good = Labeling::from_labels(vec![Label::integer(1), Label::integer(2)]);
/// assert!(check_consistency(&p, &good).is_empty());
/// # Ok(())
/// # }
/// ```
///
/// # Panics
///
/// Panics if `labeling` covers fewer messages than `program` declares.
#[must_use]
pub fn check_consistency(program: &Program, labeling: &Labeling) -> Vec<ConsistencyViolation> {
    assert!(
        labeling.len() >= program.num_messages(),
        "labeling must cover every declared message"
    );
    let mut violations = Vec::new();
    for cell in program.cell_ids() {
        let mut running: Option<(usize, MessageId, Label)> = None;
        for (pos, op) in program.cell(cell).iter().enumerate() {
            let label = labeling.label(op.message());
            if let Some((earlier_pos, earlier_message, earlier_label)) = running {
                if label < earlier_label {
                    violations.push(ConsistencyViolation {
                        cell,
                        earlier_pos,
                        earlier_message,
                        earlier_label,
                        later_pos: pos,
                        later_message: op.message(),
                        later_label: label,
                    });
                    // Keep the running max so a long descent is reported
                    // once per offending access, not quadratically.
                    continue;
                }
            }
            match running {
                Some((_, _, best)) if best >= label => {}
                _ => running = Some((pos, op.message(), label)),
            }
        }
    }
    violations
}

/// `true` if `labeling` is consistent for `program`.
#[must_use]
pub fn is_consistent(program: &Program, labeling: &Labeling) -> bool {
    check_consistency(program, labeling).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::parse_program;

    fn two_msgs() -> Program {
        parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message B: c0 -> c1\n\
             program c0 { W(A) W(B) W(A) }\n\
             program c1 { R(A) R(B) R(A) }\n",
        )
        .unwrap()
    }

    #[test]
    fn interleaved_access_requires_equal_labels() {
        let p = two_msgs();
        // A B A with distinct labels is inconsistent either way round.
        for (a, b) in [(1, 2), (2, 1)] {
            let l = Labeling::from_labels(vec![Label::integer(a), Label::integer(b)]);
            assert!(
                !is_consistent(&p, &l),
                "labels A={a} B={b} must be inconsistent"
            );
        }
        let equal = Labeling::from_labels(vec![Label::integer(1), Label::integer(1)]);
        assert!(is_consistent(&p, &equal));
    }

    #[test]
    fn trivial_labeling_is_always_consistent() {
        let p = systolic_workloads::fig2_fir();
        assert!(is_consistent(&p, &Labeling::trivial(&p)));
    }

    #[test]
    fn violation_reports_positions_and_labels() {
        let p = parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message B: c0 -> c1\n\
             program c0 { W(A) W(B) }\n\
             program c1 { R(A) R(B) }\n",
        )
        .unwrap();
        let bad = Labeling::from_labels(vec![Label::integer(3), Label::integer(1)]);
        let vs = check_consistency(&p, &bad);
        assert_eq!(vs.len(), 2);
        let v = vs[0];
        assert_eq!(v.cell, systolic_model::CellId::new(0));
        assert_eq!(v.earlier_pos, 0);
        assert_eq!(v.later_pos, 1);
        assert_eq!(v.earlier_label, Label::integer(3));
        assert_eq!(v.later_label, Label::integer(1));
    }

    #[test]
    fn fractional_labels_order_correctly() {
        let p = parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message B: c0 -> c1\n\
             program c0 { W(A) W(B) }\n\
             program c1 { R(A) R(B) }\n",
        )
        .unwrap();
        let l = Labeling::from_labels(vec![Label::ratio(3, 2), Label::integer(2)]);
        assert!(is_consistent(&p, &l));
        let l = Labeling::from_labels(vec![Label::integer(2), Label::ratio(3, 2)]);
        assert!(!is_consistent(&p, &l));
    }

    #[test]
    fn empty_program_is_consistent() {
        let p = systolic_model::ProgramBuilder::new(1).build().unwrap();
        assert!(is_consistent(&p, &Labeling::from_labels(vec![])));
    }

    #[test]
    fn descending_staircase_counts_each_later_access_once() {
        let p = parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message B: c0 -> c1\n\
             message C: c0 -> c1\n\
             program c0 { W(A) W(B) W(C) }\n\
             program c1 { R(A) R(B) R(C) }\n",
        )
        .unwrap();
        let bad = Labeling::from_labels(vec![
            Label::integer(3),
            Label::integer(2),
            Label::integer(1),
        ]);
        // Two descents per cell (3->2 and ->1), two cells.
        assert_eq!(check_consistency(&p, &bad).len(), 4);
    }
}
