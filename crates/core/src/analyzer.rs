//! The staged analysis API: [`Analyzer`] over a [`CompiledTopology`].
//!
//! The legacy [`analyze`](crate::analyze) runs the paper's whole pipeline
//! (Sections 3–7) as one opaque call. [`Analyzer`] decomposes it into the
//! stages the paper actually describes, each lazily computed, memoized and
//! individually inspectable through an [`AnalyzerSession`]:
//!
//! 1. **routes** — message routing over the compiled topology
//!    (Section 2.3), served from the route closure when precompiled;
//! 2. **classification** — the crossing-off procedure (Sections 3, 8.1);
//! 3. **labeling** — Section 6 (with the constraint-solver fallback) or a
//!    caller-chosen [`LabelingStrategy`];
//! 4. **consistency** — the independent Section 5 check;
//! 5. **requirements** — competing sets and queue counts (Section 7);
//! 6. **plan** — the certified [`CommPlan`] (Theorem 1).
//!
//! Stages report *why* a program is unsafe as structured
//! [`Diagnostic`]s (machine-readable codes plus offending message/cell
//! ids) alongside the usual [`CoreError`], so serving layers can forward
//! failures without parsing prose.
//!
//! # Examples
//!
//! Compile once, analyze many programs, inspect a failure:
//!
//! ```
//! use systolic_core::{Analyzer, AnalysisConfig, DiagnosticCode};
//! use systolic_model::{parse_program, Topology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let analyzer = Analyzer::for_topology(&Topology::linear(2), &AnalysisConfig::default());
//!
//! let safe = parse_program(
//!     "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A)*3 }\nprogram c1 { R(A)*3 }\n",
//! )?;
//! let analysis = analyzer.analyze(&safe)?;
//! assert!(analysis.classification().is_deadlock_free());
//!
//! let deadlocked = parse_program(
//!     "cells 2\nmessage A: c0 -> c1\nmessage B: c1 -> c0\n\
//!      program c0 { R(B) W(A) }\nprogram c1 { R(A) W(B) }\n",
//! )?;
//! let outcome = analyzer.diagnose(&deadlocked);
//! assert!(outcome.result().is_err());
//! let diagnostic = &outcome.diagnostics().as_slice()[0];
//! assert_eq!(diagnostic.code(), DiagnosticCode::Deadlock);
//! assert!(!diagnostic.cell_ids().is_empty());
//! # Ok(())
//! # }
//! ```

use std::cell::{OnceCell, RefCell};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use systolic_model::{CellId, MessageId, MessageRoutes, Program, Topology};
use systolic_obs::{names, Obs, SpanCtx};

use crate::crossing_off::{classify_with_snapshot, MachineSnapshot};
use crate::labeling::label_messages_assignments_only;
use crate::{
    check_consistency, classify_with, label_messages, label_messages_robust, Analysis,
    AnalysisConfig, Classification, CommPlan, CompetingSets, CompiledTopology,
    ConsistencyViolation, CoreError, Diagnostic, DiagnosticCode, Diagnostics, Labeling,
    LabelingMethod, LabelingReport, Lookahead, LookaheadLimits, QueueRequirements,
};

/// Precomputed artifacts the incremental path injects into a session so
/// unchanged stages are *reused* instead of recomputed. Seeded stages skip
/// their stage closure entirely (they can emit no diagnostics on success,
/// so skipping preserves diagnostic parity), except classification, which
/// is injected *into* its closure so the deadlock diagnostic is still
/// emitted by the same code as a from-scratch run.
#[derive(Default)]
pub(crate) struct SessionSeeds {
    pub routes: Option<MessageRoutes>,
    pub classification: Option<Classification>,
    pub competing: Option<CompetingSets>,
    /// Use the assignments-only (early-stopping) Section 6 driver. Sound
    /// only because the labeling stage runs strictly after classification
    /// has proven the program deadlock-free.
    pub fast_labeling: bool,
    /// Capture the crossing-off machine's end state for later resumption.
    pub capture_snapshot: bool,
}

/// What a finished incremental session hands back for the next edit:
/// every per-stage artifact that survived, ready to seed the next session.
#[derive(Debug, Default)]
pub(crate) struct WarmArtifacts {
    pub routes: Option<MessageRoutes>,
    pub classification: Option<Classification>,
    pub snapshot: Option<MachineSnapshot>,
    pub competing: Option<CompetingSets>,
}

/// Which labeling scheme(s) an [`Analyzer`] may use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LabelingStrategy {
    /// The paper's Section 6 scheme, falling back to the complete
    /// constraint-solving scheme when it wedges — the legacy
    /// [`analyze`](crate::analyze) behaviour.
    #[default]
    Auto,
    /// Section 6 only: wedging is an error (useful for studying the
    /// scheme itself).
    Section6,
    /// The constraint solver only.
    ConstraintSolver,
}

/// Builds an [`Analyzer`] with non-default options.
///
/// # Examples
///
/// ```
/// use systolic_core::{AnalysisConfig, Analyzer, CompiledTopology, LabelingStrategy};
/// use systolic_model::Topology;
///
/// let compiled = CompiledTopology::compile(&Topology::linear(3), &AnalysisConfig::default());
/// let analyzer = Analyzer::builder(compiled)
///     .labeling(LabelingStrategy::ConstraintSolver)
///     .verify_consistency(true)
///     .build();
/// assert_eq!(analyzer.config().queues_per_interval, 1);
/// ```
#[derive(Clone, Debug)]
pub struct AnalyzerBuilder {
    compiled: Arc<CompiledTopology>,
    labeling: LabelingStrategy,
    verify_consistency: bool,
}

impl AnalyzerBuilder {
    /// Chooses the labeling strategy (default: [`LabelingStrategy::Auto`]).
    #[must_use]
    pub fn labeling(mut self, strategy: LabelingStrategy) -> Self {
        self.labeling = strategy;
        self
    }

    /// When `true`, runs the independent Section 5 consistency check as a
    /// mandatory stage (instead of a debug assertion) and fails the plan
    /// on violations. Default `false`: both shipped labeling schemes are
    /// verified consistent by construction, so release builds skip the
    /// extra pass.
    #[must_use]
    pub fn verify_consistency(mut self, on: bool) -> Self {
        self.verify_consistency = on;
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> Analyzer {
        Analyzer {
            compiled: self.compiled,
            labeling: self.labeling,
            verify_consistency: self.verify_consistency,
            obs: None,
        }
    }
}

/// A reusable handle that runs staged analyses against one
/// [`CompiledTopology`].
///
/// Cheap to clone (the compilation is behind an [`Arc`]); safe to share
/// across threads.
#[derive(Clone, Debug)]
pub struct Analyzer {
    compiled: Arc<CompiledTopology>,
    labeling: LabelingStrategy,
    verify_consistency: bool,
    obs: Option<Arc<Obs>>,
}

impl Analyzer {
    /// An analyzer with default options over a compiled topology.
    #[must_use]
    pub fn new(compiled: impl Into<Arc<CompiledTopology>>) -> Self {
        Analyzer {
            compiled: compiled.into(),
            labeling: LabelingStrategy::default(),
            verify_consistency: false,
            obs: None,
        }
    }

    /// Attaches a shared observability bundle. Sessions finished through
    /// an observed analyzer drive the pipeline stage by stage, recording
    /// one duration histogram sample per stage
    /// (`systolic_analyzer_stage_duration_micros{stage=...}` — exclusive
    /// time, since earlier stages are memoized), one counter per pushed
    /// diagnostic code, and — when the caller supplies a [`SpanCtx`] via
    /// [`Analyzer::diagnose_in`] — one child span per stage.
    #[must_use]
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Compiles `topology` against `config` and wraps it in an analyzer —
    /// the one-shot convenience path (and what the legacy
    /// [`analyze`](crate::analyze) wrapper uses). Prefer compiling once
    /// with [`CompiledTopology::compile`] when analyzing many programs.
    #[must_use]
    pub fn for_topology(topology: &Topology, config: &AnalysisConfig) -> Self {
        Analyzer::new(CompiledTopology::compile(topology, config))
    }

    /// Starts a builder for non-default options.
    #[must_use]
    pub fn builder(compiled: impl Into<Arc<CompiledTopology>>) -> AnalyzerBuilder {
        AnalyzerBuilder {
            compiled: compiled.into(),
            labeling: LabelingStrategy::default(),
            verify_consistency: false,
        }
    }

    /// The shared compilation this analyzer runs against.
    #[must_use]
    pub fn compiled(&self) -> &Arc<CompiledTopology> {
        &self.compiled
    }

    /// The analysis configuration (lookahead, hardware queue count).
    #[must_use]
    pub fn config(&self) -> &AnalysisConfig {
        self.compiled.config()
    }

    /// Opens a staged session for one program. Stages run lazily as they
    /// are first inspected; nothing is computed up front.
    #[must_use]
    pub fn session<'a>(&'a self, program: &'a Program) -> AnalyzerSession<'a> {
        self.session_with(program, true, None)
    }

    fn session_with<'a>(
        &'a self,
        program: &'a Program,
        advisories: bool,
        ctx: Option<SpanCtx>,
    ) -> AnalyzerSession<'a> {
        self.seeded_session_with(program, advisories, ctx, SessionSeeds::default())
    }

    /// A session pre-seeded with artifacts reused from a previous analysis
    /// (the incremental path). Diagnostics behave exactly as in
    /// [`Analyzer::diagnose`].
    pub(crate) fn seeded_session<'a>(
        &'a self,
        program: &'a Program,
        ctx: Option<SpanCtx>,
        seeds: SessionSeeds,
    ) -> AnalyzerSession<'a> {
        self.seeded_session_with(program, true, ctx, seeds)
    }

    fn seeded_session_with<'a>(
        &'a self,
        program: &'a Program,
        advisories: bool,
        ctx: Option<SpanCtx>,
        seeds: SessionSeeds,
    ) -> AnalyzerSession<'a> {
        fn cell_from<T>(value: Option<T>) -> OnceCell<Result<T, CoreError>> {
            match value {
                Some(v) => OnceCell::from(Ok(v)),
                None => OnceCell::new(),
            }
        }
        AnalyzerSession {
            analyzer: self,
            program,
            advisories,
            ctx,
            routes: cell_from(seeds.routes),
            limits: OnceCell::new(),
            classification: OnceCell::new(),
            seeded_classification: RefCell::new(seeds.classification),
            fast_labeling: seeds.fast_labeling,
            capture_snapshot: seeds.capture_snapshot,
            snapshot: RefCell::new(None),
            labeling: OnceCell::new(),
            consistency: OnceCell::new(),
            competing: cell_from(seeds.competing),
            requirements: OnceCell::new(),
            plan: OnceCell::new(),
            diagnostics: RefCell::new(Diagnostics::new()),
        }
    }

    /// The attached observability bundle, if any.
    pub(crate) fn obs(&self) -> Option<&Arc<Obs>> {
        self.obs.as_ref()
    }

    /// This analyzer with its compilation replaced (incremental topology
    /// edits); labeling strategy, consistency verification and
    /// observability carry over.
    pub(crate) fn with_compiled_swapped(&self, compiled: Arc<CompiledTopology>) -> Analyzer {
        Analyzer {
            compiled,
            labeling: self.labeling,
            verify_consistency: self.verify_consistency,
            obs: self.obs.clone(),
        }
    }

    /// Runs all stages and returns the legacy [`Analysis`] — identical in
    /// every observable way to [`analyze`](crate::analyze) on the same
    /// inputs (the parity property tests assert byte-identical plan
    /// fingerprints).
    ///
    /// # Errors
    ///
    /// The same errors as [`analyze`](crate::analyze).
    pub fn analyze(&self, program: &Program) -> Result<Analysis, CoreError> {
        // Diagnostics are discarded here, so skip the advisory
        // (info-severity) scans; error paths still emit theirs.
        self.session_with(program, false, None)
            .finish()
            .into_result()
    }

    /// Runs all stages and returns the result *with* the accumulated
    /// structured diagnostics — what serving layers forward to clients.
    #[must_use]
    pub fn diagnose(&self, program: &Program) -> AnalysisOutcome {
        self.session(program).finish()
    }

    /// [`Analyzer::diagnose`] with a tracing context: when this analyzer
    /// carries an [`Obs`] bundle, each pipeline stage is recorded as a
    /// child span of `ctx.parent` in `ctx.trace`.
    #[must_use]
    pub fn diagnose_in(&self, program: &Program, ctx: Option<SpanCtx>) -> AnalysisOutcome {
        self.session_with(program, true, ctx).finish()
    }
}

/// A finished analysis plus everything the stages reported along the way.
#[derive(Clone, Debug)]
pub struct AnalysisOutcome {
    result: Result<Analysis, CoreError>,
    diagnostics: Diagnostics,
}

impl AnalysisOutcome {
    /// The analysis result by reference.
    pub fn result(&self) -> Result<&Analysis, &CoreError> {
        self.result.as_ref()
    }

    /// `true` if the program was certified.
    #[must_use]
    pub fn is_certified(&self) -> bool {
        self.result.is_ok()
    }

    /// The structured diagnostics, in stage order.
    #[must_use]
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diagnostics
    }

    /// Consumes the outcome, returning only the result (the legacy shape).
    ///
    /// # Errors
    ///
    /// Whatever error the analysis produced.
    pub fn into_result(self) -> Result<Analysis, CoreError> {
        self.result
    }

    /// Consumes the outcome into `(result, diagnostics)`.
    pub fn into_parts(self) -> (Result<Analysis, CoreError>, Diagnostics) {
        (self.result, self.diagnostics)
    }
}

/// The memoized per-stage state of one program's analysis.
///
/// Obtained from [`Analyzer::session`]. Every accessor computes its stage
/// (and the stages it depends on) at most once; diagnostics accumulate as
/// stages run, so [`AnalyzerSession::diagnostics`] reflects exactly the
/// stages inspected so far. Not `Sync` — open one session per thread; the
/// [`Analyzer`] and its [`CompiledTopology`] are the shared pieces.
pub struct AnalyzerSession<'a> {
    analyzer: &'a Analyzer,
    program: &'a Program,
    /// When `false`, info-severity advisory scans (queue-extension
    /// candidates) are skipped — result-only callers don't pay for
    /// diagnostics nobody reads.
    advisories: bool,
    /// Trace context for stage spans (requires an observed analyzer).
    ctx: Option<SpanCtx>,
    routes: OnceCell<Result<MessageRoutes, CoreError>>,
    limits: OnceCell<Result<LookaheadLimits, CoreError>>,
    classification: OnceCell<Result<Classification, CoreError>>,
    /// A reused classification injected by the incremental path; consumed
    /// by the classification stage in place of running the crossing-off
    /// procedure, so the stage's diagnostics are still emitted uniformly.
    seeded_classification: RefCell<Option<Classification>>,
    /// Use the assignments-only Section 6 driver (incremental path; sound
    /// because labeling runs only after classification proves the program
    /// deadlock-free).
    fast_labeling: bool,
    /// Capture the crossing-off end state into `snapshot`.
    capture_snapshot: bool,
    snapshot: RefCell<Option<MachineSnapshot>>,
    labeling: OnceCell<Result<LabelingOutcome, CoreError>>,
    consistency: OnceCell<Result<Vec<ConsistencyViolation>, CoreError>>,
    competing: OnceCell<Result<CompetingSets, CoreError>>,
    requirements: OnceCell<Result<QueueRequirements, CoreError>>,
    plan: OnceCell<Result<CommPlan, CoreError>>,
    diagnostics: RefCell<Diagnostics>,
}

impl std::fmt::Debug for AnalyzerSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalyzerSession")
            .field("program_cells", &self.program.num_cells())
            .field("diagnostics", &self.diagnostics.borrow().len())
            .finish_non_exhaustive()
    }
}

#[derive(Clone, Debug)]
struct LabelingOutcome {
    labeling: Labeling,
    method: LabelingMethod,
    report: Option<LabelingReport>,
}

impl<'a> AnalyzerSession<'a> {
    /// The program under analysis.
    #[must_use]
    pub fn program(&self) -> &Program {
        self.program
    }

    fn push(&self, diagnostic: Diagnostic) {
        if let Some(obs) = self.analyzer.obs.as_deref() {
            obs.registry()
                .counter_with(
                    names::ANALYZER_DIAGNOSTICS,
                    &[("code", diagnostic.code().as_str())],
                )
                .inc();
        }
        self.diagnostics.borrow_mut().push(diagnostic);
    }

    /// A snapshot of the diagnostics emitted by the stages run so far.
    #[must_use]
    pub fn diagnostics(&self) -> Diagnostics {
        self.diagnostics.borrow().clone()
    }

    /// Stage 1: message routes over the compiled topology.
    ///
    /// # Errors
    ///
    /// [`CoreError::Model`] for cell-count mismatches and unroutable
    /// messages.
    pub fn routes(&self) -> Result<&MessageRoutes, CoreError> {
        self.routes
            .get_or_init(|| {
                let compiled = &self.analyzer.compiled;
                if self.program.num_cells() != compiled.num_cells() {
                    let error = systolic_model::ModelError::CellCountMismatch {
                        program: self.program.num_cells(),
                        topology: compiled.num_cells(),
                    };
                    self.push(Diagnostic::new(
                        DiagnosticCode::CellCountMismatch,
                        error.to_string(),
                    ));
                    return Err(CoreError::Model(error));
                }
                let mut routes = Vec::with_capacity(self.program.num_messages());
                for (i, decl) in self.program.messages().iter().enumerate() {
                    match compiled.route(decl.sender(), decl.receiver()) {
                        Ok(route) => routes.push(route),
                        Err(error) => {
                            self.push(
                                Diagnostic::new(
                                    DiagnosticCode::RouteFailure,
                                    format!("message {} cannot be routed: {error}", decl.name()),
                                )
                                .with_messages([MessageId::new(i as u32)])
                                .with_cells([decl.sender(), decl.receiver()]),
                            );
                            return Err(CoreError::Model(error));
                        }
                    }
                }
                Ok(MessageRoutes::from_routes(routes))
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// Stage 1b: the lookahead budgets implied by the compiled
    /// configuration.
    ///
    /// # Errors
    ///
    /// Propagates routing errors (capacity-based budgets need routes).
    pub fn limits(&self) -> Result<&LookaheadLimits, CoreError> {
        self.limits
            .get_or_init(|| {
                let compiled = &self.analyzer.compiled;
                // Only the per-queue-capacity rule needs routes; don't
                // force the routing stage otherwise.
                if let Lookahead::PerQueueCapacity(_) = compiled.config().lookahead {
                    let routes = self.routes()?;
                    Ok(compiled.limits_for(self.program, routes))
                } else {
                    // Routing errors must still gate the pipeline exactly
                    // as the legacy analyze did (routes were computed
                    // first there).
                    self.routes()?;
                    Ok(compiled.limits_for(self.program, &MessageRoutes::from_routes(Vec::new())))
                }
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// Stage 2: the crossing-off verdict (paper, Sections 3 and 8.1).
    ///
    /// A deadlocked program is an `Ok` here — the [`Classification`]
    /// (verdict, trace, stuck report) is itself the inspectable artifact;
    /// an `E-DEADLOCK` diagnostic is emitted alongside. Later stages
    /// refuse deadlocked programs with
    /// [`CoreError::ProgramDeadlocked`].
    ///
    /// # Errors
    ///
    /// Propagates routing errors.
    pub fn classification(&self) -> Result<&Classification, CoreError> {
        self.classification
            .get_or_init(|| {
                let limits = self.limits()?;
                let seeded = self.seeded_classification.borrow_mut().take();
                let classification = match seeded {
                    Some(classification) => classification,
                    None if self.capture_snapshot => {
                        let (classification, snapshot) =
                            classify_with_snapshot(self.program, limits);
                        *self.snapshot.borrow_mut() = Some(snapshot);
                        classification
                    }
                    None => classify_with(self.program, limits),
                };
                if let Classification::Deadlocked { trace, stuck } = &classification {
                    let mut cells = Vec::new();
                    let mut messages = Vec::new();
                    for (i, front) in stuck.fronts.iter().enumerate() {
                        if let Some((_, op)) = front {
                            cells.push(CellId::new(i as u32));
                            if !messages.contains(&op.message()) {
                                messages.push(op.message());
                            }
                        }
                    }
                    self.push(
                        Diagnostic::new(
                            DiagnosticCode::Deadlock,
                            format!(
                                "program is deadlocked: crossing-off stalled after {} words \
                                 with {} operations remaining",
                                trace.total_pairs(),
                                stuck.remaining_ops
                            ),
                        )
                        .with_messages(messages)
                        .with_cells(cells),
                    );
                } else if self.advisories
                    && !matches!(
                        self.analyzer.compiled.config().lookahead,
                        Lookahead::Disabled
                    )
                {
                    // Advisory: messages whose skip counts would engage the
                    // iWarp queue-extension mechanism on zero-capacity
                    // budgets (Section 8.1). One pass over the trace.
                    let mut max_skips: BTreeMap<MessageId, usize> = BTreeMap::new();
                    for pair in classification.trace().pairs() {
                        for (&m, &count) in &pair.skipped {
                            let entry = max_skips.entry(m).or_insert(0);
                            *entry = (*entry).max(count);
                        }
                    }
                    for (m, skips) in max_skips {
                        if skips > 0 {
                            self.push(
                                Diagnostic::new(
                                    DiagnosticCode::ExtensionCandidate,
                                    format!(
                                        "lookahead skips up to {skips} writes of {}; queues \
                                         shorter than that require the queue-extension mechanism",
                                        self.program.message(m).name()
                                    ),
                                )
                                .with_messages([m]),
                            );
                        }
                    }
                }
                Ok(classification)
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    fn deadlock_error(classification: &Classification) -> Option<CoreError> {
        if let Classification::Deadlocked { trace, stuck } = classification {
            Some(CoreError::ProgramDeadlocked {
                crossed_words: trace.total_pairs(),
                remaining_ops: stuck.remaining_ops,
            })
        } else {
            None
        }
    }

    fn labeling_outcome(&self) -> Result<&LabelingOutcome, CoreError> {
        self.labeling
            .get_or_init(|| {
                let classification = self.classification()?;
                if let Some(error) = Self::deadlock_error(classification) {
                    return Err(error);
                }
                let limits = self.limits()?;
                let section6 = |report: LabelingReport| LabelingOutcome {
                    labeling: report.labeling().clone(),
                    method: LabelingMethod::Section6,
                    report: Some(report),
                };
                // The incremental path substitutes the early-stopping
                // Section 6 driver: identical labels, errors and
                // diagnostics (the program is already proven
                // deadlock-free above), truncated trace.
                let run_section6 = |program, limits| {
                    if self.fast_labeling {
                        label_messages_assignments_only(program, limits)
                    } else {
                        label_messages(program, limits)
                    }
                };
                match self.analyzer.labeling {
                    LabelingStrategy::ConstraintSolver => {
                        let labeling = label_messages_robust(self.program, limits)
                            .map_err(|e| self.label_error(&e))?;
                        Ok(LabelingOutcome {
                            labeling,
                            method: LabelingMethod::ConstraintSolver,
                            report: None,
                        })
                    }
                    LabelingStrategy::Section6 => match run_section6(self.program, limits) {
                        Ok(report) => Ok(section6(report)),
                        Err(error) => Err(self.label_error(&error)),
                    },
                    LabelingStrategy::Auto => match run_section6(self.program, limits) {
                        Ok(report) => Ok(section6(report)),
                        Err(
                            error @ (CoreError::LabelConflict { .. }
                            | CoreError::InconsistentLabeling { .. }),
                        ) => {
                            self.push(Diagnostic::new(
                                DiagnosticCode::Section6Fallback,
                                format!(
                                    "the section 6 labeling scheme wedged ({error}); \
                                     using the constraint-solving scheme"
                                ),
                            ));
                            let labeling = label_messages_robust(self.program, limits)
                                .map_err(|e| self.label_error(&e))?;
                            Ok(LabelingOutcome {
                                labeling,
                                method: LabelingMethod::ConstraintSolver,
                                report: None,
                            })
                        }
                        Err(other) => Err(self.label_error(&other)),
                    },
                }
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// Emits the diagnostic for a labeling-stage error and passes the
    /// error through.
    fn label_error(&self, error: &CoreError) -> CoreError {
        self.push(Diagnostic::from_error(error));
        error.clone()
    }

    /// Stage 3: the consistent labeling.
    ///
    /// # Errors
    ///
    /// Routing errors, [`CoreError::ProgramDeadlocked`] for deadlocked
    /// programs, and labeling failures per the configured
    /// [`LabelingStrategy`].
    pub fn labeling(&self) -> Result<&Labeling, CoreError> {
        Ok(&self.labeling_outcome()?.labeling)
    }

    /// Which scheme produced the labels (only available once
    /// [`AnalyzerSession::labeling`] succeeds).
    ///
    /// # Errors
    ///
    /// As [`AnalyzerSession::labeling`].
    pub fn labeling_method(&self) -> Result<LabelingMethod, CoreError> {
        Ok(self.labeling_outcome()?.method)
    }

    /// The Section 6 labeling report, when that scheme produced the
    /// labels.
    ///
    /// # Errors
    ///
    /// As [`AnalyzerSession::labeling`].
    pub fn labeling_report(&self) -> Result<Option<&LabelingReport>, CoreError> {
        Ok(self.labeling_outcome()?.report.as_ref())
    }

    /// Stage 4: the independent Section 5 consistency check of the
    /// labeling. Empty means consistent.
    ///
    /// # Errors
    ///
    /// As [`AnalyzerSession::labeling`].
    pub fn consistency(&self) -> Result<&[ConsistencyViolation], CoreError> {
        self.consistency
            .get_or_init(|| {
                let labeling = self.labeling()?;
                let violations = check_consistency(self.program, labeling);
                if !violations.is_empty() {
                    let cells: Vec<CellId> = violations.iter().map(|v| v.cell).collect();
                    let mut messages = Vec::new();
                    for v in &violations {
                        for m in [v.earlier_message, v.later_message] {
                            if !messages.contains(&m) {
                                messages.push(m);
                            }
                        }
                    }
                    self.push(
                        Diagnostic::new(
                            DiagnosticCode::InconsistentLabeling,
                            format!(
                                "the labeling violates consistency at {} cell position(s)",
                                violations.len()
                            ),
                        )
                        .with_messages(messages)
                        .with_cells(cells),
                    );
                }
                Ok(violations)
            })
            .as_ref()
            .map(Vec::as_slice)
            .map_err(Clone::clone)
    }

    /// Stage 5a: the competing-message sets (paper, Section 2.3).
    ///
    /// # Errors
    ///
    /// Propagates routing errors.
    pub fn competing(&self) -> Result<&CompetingSets, CoreError> {
        self.competing
            .get_or_init(|| Ok(CompetingSets::compute(self.routes()?)))
            .as_ref()
            .map_err(Clone::clone)
    }

    /// Stage 5b: the queue requirements (Theorem 1 assumption (ii) data).
    ///
    /// This computes the requirements even when they exceed the hardware
    /// queue count — feasibility is checked by
    /// [`AnalyzerSession::plan`], so an infeasible configuration's
    /// requirements stay inspectable.
    ///
    /// # Errors
    ///
    /// Routing and labeling errors.
    pub fn requirements(&self) -> Result<&QueueRequirements, CoreError> {
        self.requirements
            .get_or_init(|| {
                let competing = self.competing()?;
                let labeling = self.labeling()?;
                Ok(QueueRequirements::compute(competing, labeling))
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// Stage 6: the certified communication plan.
    ///
    /// # Errors
    ///
    /// Everything earlier stages can fail with, plus
    /// [`CoreError::Infeasible`] when an interval needs more queues than
    /// the compiled configuration provides, and
    /// [`CoreError::InconsistentLabeling`] when the builder enabled
    /// [`AnalyzerBuilder::verify_consistency`] and the check fails.
    pub fn plan(&self) -> Result<&CommPlan, CoreError> {
        self.plan
            .get_or_init(|| {
                let outcome = self.labeling_outcome()?;
                if self.analyzer.verify_consistency {
                    let violations = self.consistency()?;
                    if !violations.is_empty() {
                        return Err(CoreError::InconsistentLabeling {
                            violations: violations.len(),
                        });
                    }
                } else {
                    debug_assert!(
                        self.consistency().map(<[_]>::is_empty).unwrap_or(true),
                        "labeling schemes must produce consistent labelings"
                    );
                }
                let requirements = self.requirements()?.clone();
                let config = self.analyzer.compiled.config();
                if let Err(error) = requirements.check_feasible(config.queues_per_interval) {
                    if let CoreError::Infeasible {
                        hop,
                        required,
                        available,
                    } = &error
                    {
                        // The requirement is the *interval* sum of both
                        // directions' largest same-label groups, so name
                        // the largest group of each direction — not just
                        // the reported hop's (opposite-direction traffic
                        // can be the other half of the shortfall).
                        let mut group: Vec<MessageId> = Vec::new();
                        for (_, messages) in self.competing()?.on_interval(hop.interval()) {
                            let mut by_label: BTreeMap<crate::Label, Vec<MessageId>> =
                                BTreeMap::new();
                            for &m in messages {
                                by_label
                                    .entry(outcome.labeling.label(m))
                                    .or_default()
                                    .push(m);
                            }
                            if let Some(largest) = by_label.into_values().max_by_key(Vec::len) {
                                group.extend(largest);
                            }
                        }
                        self.push(
                            Diagnostic::new(
                                DiagnosticCode::Infeasible,
                                format!(
                                    "interval crossing {hop} needs {required} queues for \
                                     compatible assignment but only {available} are available"
                                ),
                            )
                            .with_messages(group)
                            .with_cells([hop.from(), hop.to()]),
                        );
                    }
                    return Err(error);
                }
                Ok(CommPlan::new(
                    outcome.labeling.clone(),
                    self.routes()?.clone(),
                    self.competing()?.clone(),
                    requirements,
                ))
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// Drives the stages one by one under an observer: each stage's
    /// duration lands in a per-stage histogram and (given a trace context)
    /// a child span. Memoization makes each measurement *exclusive* —
    /// dependencies forced by a later stage were already computed and
    /// timed by their own step.
    fn drive_observed(&self, obs: &Obs) -> Result<(), CoreError> {
        let run = |name: &'static str,
                   stage: &dyn Fn() -> Result<(), CoreError>|
         -> Result<(), CoreError> {
            let span = self
                .ctx
                .map(|c| obs.tracer().start(c.trace, Some(c.parent), name));
            let start = Instant::now();
            let result = stage();
            obs.registry()
                .histogram_with(names::ANALYZER_STAGE_DURATION, &[("stage", name)])
                .record(start.elapsed().as_micros() as u64);
            if let Some(span) = span {
                obs.tracer().finish(span);
            }
            result
        };
        run("routes", &|| self.routes().map(drop))?;
        run("classification", &|| self.classification().map(drop))?;
        run("labeling", &|| self.labeling().map(drop))?;
        if self.analyzer.verify_consistency {
            run("consistency", &|| self.consistency().map(drop))?;
        }
        run("competing", &|| self.competing().map(drop))?;
        run("requirements", &|| self.requirements().map(drop))?;
        run("plan", &|| self.plan().map(drop))
    }

    /// Drives every stage and consumes the session into an
    /// [`AnalysisOutcome`] — the result (identical to the legacy
    /// [`analyze`](crate::analyze)) plus all accumulated diagnostics.
    #[must_use]
    pub fn finish(self) -> AnalysisOutcome {
        // Drive the stages to completion (or the first error)…
        let driven: Result<(), CoreError> = match self.analyzer.obs.as_deref() {
            Some(obs) => self.drive_observed(obs),
            None => self.plan().map(drop),
        };
        let diagnostics = self.diagnostics.into_inner();
        // …then drain the memoized artifacts out of their cells without
        // cloning — the session owns them and is consumed here.
        let result = driven.map(|()| {
            let take = "plan success implies every earlier stage succeeded";
            let plan = self.plan.into_inner().expect(take).expect(take);
            let classification = self.classification.into_inner().expect(take).expect(take);
            let outcome = self.labeling.into_inner().expect(take).expect(take);
            let limits = self.limits.into_inner().expect(take).expect(take);
            Analysis::from_parts(classification, outcome.report, outcome.method, plan, limits)
        });
        AnalysisOutcome {
            result,
            diagnostics,
        }
    }

    /// [`AnalyzerSession::finish`] for the incremental path: additionally
    /// drains every per-stage artifact (successful stages only) so the
    /// next edit can be seeded from them. Failed pipelines keep whatever
    /// stages did succeed — a deadlocked program's classification and
    /// snapshot are exactly what the next (possibly fixing) edit resumes
    /// from.
    pub(crate) fn finish_incremental(self) -> (AnalysisOutcome, WarmArtifacts) {
        let driven: Result<(), CoreError> = match self.analyzer.obs.as_deref() {
            Some(obs) => self.drive_observed(obs),
            None => self.plan().map(drop),
        };
        let diagnostics = self.diagnostics.into_inner();
        let routes = self.routes.into_inner().and_then(Result::ok);
        let limits = self.limits.into_inner().and_then(Result::ok);
        let classification = self.classification.into_inner().and_then(Result::ok);
        let competing = self.competing.into_inner().and_then(Result::ok);
        let labeling = self.labeling.into_inner().and_then(Result::ok);
        let plan = self.plan.into_inner().and_then(Result::ok);
        let snapshot = self.snapshot.into_inner();
        let result = driven.map(|()| {
            let take = "plan success implies every earlier stage succeeded";
            let outcome = labeling.as_ref().expect(take);
            Analysis::from_parts(
                classification.clone().expect(take),
                outcome.report.clone(),
                outcome.method,
                plan.expect(take),
                limits.clone().expect(take),
            )
        });
        (
            AnalysisOutcome {
                result,
                diagnostics,
            },
            WarmArtifacts {
                routes,
                classification,
                snapshot,
                competing,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use systolic_model::parse_program;

    fn fig7_text() -> &'static str {
        "cells 4\n\
         message A: c1 -> c2\n\
         message B: c2 -> c3\n\
         message C: c0 -> c3\n\
         program c0 { W(C)*3 }\n\
         program c1 { W(A)*4 }\n\
         program c2 { R(A)*4 W(B)*3 }\n\
         program c3 { R(C)*3 R(B)*3 }\n"
    }

    #[test]
    fn staged_session_exposes_every_artifact() {
        let p = parse_program(fig7_text()).unwrap();
        let analyzer = Analyzer::for_topology(&Topology::linear(4), &AnalysisConfig::default());
        let session = analyzer.session(&p);
        assert_eq!(session.routes().unwrap().len(), 3);
        assert!(session.classification().unwrap().is_deadlock_free());
        assert_eq!(session.labeling().unwrap().len(), 3);
        assert_eq!(session.labeling_method().unwrap(), LabelingMethod::Section6);
        assert!(session.labeling_report().unwrap().is_some());
        assert!(session.consistency().unwrap().is_empty());
        assert_eq!(session.competing().unwrap().len(), 3);
        assert_eq!(session.requirements().unwrap().max_per_interval(), 1);
        assert_eq!(session.plan().unwrap().labeling().len(), 3);
        assert!(session.diagnostics().is_empty());
        let outcome = session.finish();
        assert!(outcome.is_certified());
        assert!(outcome.diagnostics().is_empty());
    }

    #[test]
    fn analyzer_matches_legacy_analyze_on_fig7() {
        let p = parse_program(fig7_text()).unwrap();
        let topology = Topology::linear(4);
        let config = AnalysisConfig::default();
        let legacy = analyze(&p, &topology, &config).unwrap();
        let staged = Analyzer::for_topology(&topology, &config)
            .analyze(&p)
            .unwrap();
        assert_eq!(legacy.plan().fingerprint(), staged.plan().fingerprint());
        assert_eq!(legacy.labeling_method(), staged.labeling_method());
    }

    #[test]
    fn deadlock_produces_a_structured_diagnostic() {
        let p = parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message B: c1 -> c0\n\
             program c0 { R(B) W(A) }\n\
             program c1 { R(A) W(B) }\n",
        )
        .unwrap();
        let analyzer = Analyzer::for_topology(&Topology::linear(2), &AnalysisConfig::default());
        let outcome = analyzer.diagnose(&p);
        assert!(matches!(
            outcome.result(),
            Err(CoreError::ProgramDeadlocked { .. })
        ));
        let diagnostics = outcome.diagnostics();
        assert_eq!(diagnostics.len(), 1);
        let d = &diagnostics.as_slice()[0];
        assert_eq!(d.code(), DiagnosticCode::Deadlock);
        assert_eq!(d.cell_ids(), &[CellId::new(0), CellId::new(1)]);
        assert!(!d.message_ids().is_empty());
    }

    #[test]
    fn infeasible_names_the_interval_and_competitors() {
        // Fig. 9: two same-label messages on one hop need 2 queues.
        let p = parse_program(
            "cells 3\n\
             message A: c0 -> c1\n\
             message B: c0 -> c2\n\
             program c0 { W(A) W(B) W(A) W(A) W(B) W(B) W(A) }\n\
             program c1 { R(A)*4 }\n\
             program c2 { R(B)*3 }\n",
        )
        .unwrap();
        let analyzer = Analyzer::for_topology(&Topology::linear(3), &AnalysisConfig::default());
        let session = analyzer.session(&p);
        // The requirements stage stays inspectable despite infeasibility.
        assert_eq!(session.requirements().unwrap().max_per_interval(), 2);
        let err = session.plan().unwrap_err();
        assert!(matches!(
            err,
            CoreError::Infeasible {
                required: 2,
                available: 1,
                ..
            }
        ));
        let outcome = session.finish();
        let d = outcome
            .diagnostics()
            .iter()
            .find(|d| d.code() == DiagnosticCode::Infeasible)
            .expect("infeasible diagnostic");
        assert_eq!(d.cell_ids(), &[CellId::new(0), CellId::new(1)]);
        assert_eq!(
            d.message_ids().len(),
            2,
            "both same-label competitors named"
        );
    }

    #[test]
    fn unroutable_message_is_diagnosed_with_its_id() {
        let p = parse_program(
            "cells 4\n\
             message A: c0 -> c3\n\
             program c0 { W(A) }\n\
             program c3 { R(A) }\n",
        )
        .unwrap();
        let disconnected = Topology::graph(
            4,
            [
                (CellId::new(0), CellId::new(1)),
                (CellId::new(2), CellId::new(3)),
            ],
        )
        .unwrap();
        let analyzer = Analyzer::for_topology(&disconnected, &AnalysisConfig::default());
        let outcome = analyzer.diagnose(&p);
        assert!(outcome.result().is_err());
        let d = &outcome.diagnostics().as_slice()[0];
        assert_eq!(d.code(), DiagnosticCode::RouteFailure);
        assert_eq!(d.message_ids(), &[MessageId::new(0)]);
        assert_eq!(d.cell_ids(), &[CellId::new(0), CellId::new(3)]);
    }

    #[test]
    fn section6_fallback_emits_a_warning() {
        // The 6-cell witness where the literal Section 6 scheme wedges.
        let p = parse_program(
            "cells 6\n\
             message M0: c5 -> c2\n\
             message M1: c1 -> c4\n\
             message M2: c3 -> c0\n\
             message M3: c0 -> c4\n\
             message M4: c4 -> c2\n\
             message M5: c0 -> c4\n\
             message M6: c2 -> c1\n\
             message M7: c4 -> c2\n\
             message M8: c2 -> c3\n\
             program c0 { W(M5) W(M5) R(M2) W(M3) }\n\
             program c1 { R(M6) R(M6) W(M1) W(M1) }\n\
             program c2 { R(M4) R(M4) W(M6) W(M6) W(M8) R(M7) R(M7) R(M0) R(M0) }\n\
             program c3 { R(M8) W(M2) }\n\
             program c4 { W(M4) W(M4) R(M5) R(M5) R(M1) R(M3) R(M1) W(M7) W(M7) }\n\
             program c5 { W(M0) W(M0) }\n",
        )
        .unwrap();
        let config = AnalysisConfig {
            queues_per_interval: 4,
            ..Default::default()
        };
        let analyzer = Analyzer::for_topology(&Topology::linear(6), &config);
        let outcome = analyzer.diagnose(&p);
        assert!(outcome.is_certified());
        let d = &outcome.diagnostics().as_slice()[0];
        assert_eq!(d.code(), DiagnosticCode::Section6Fallback);
        assert_eq!(d.severity(), crate::Severity::Warning);

        // Section6-only strategy turns the wedge into an error instead.
        let strict = Analyzer::builder(Arc::clone(analyzer.compiled()))
            .labeling(LabelingStrategy::Section6)
            .build();
        assert!(strict.analyze(&p).is_err());

        // The solver-only strategy certifies it directly.
        let solver = Analyzer::builder(Arc::clone(analyzer.compiled()))
            .labeling(LabelingStrategy::ConstraintSolver)
            .build();
        let analysis = solver.analyze(&p).unwrap();
        assert_eq!(analysis.labeling_method(), LabelingMethod::ConstraintSolver);
    }

    #[test]
    fn lookahead_session_reports_extension_candidates() {
        let p = parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message B: c0 -> c1\n\
             program c0 { W(A)*4 W(B) }\n\
             program c1 { R(B) R(A)*4 }\n",
        )
        .unwrap();
        let config = AnalysisConfig {
            lookahead: Lookahead::Unbounded,
            queues_per_interval: 2,
        };
        let analyzer = Analyzer::for_topology(&Topology::linear(2), &config);
        let outcome = analyzer.diagnose(&p);
        assert!(outcome.is_certified());
        let d = outcome
            .diagnostics()
            .iter()
            .find(|d| d.code() == DiagnosticCode::ExtensionCandidate)
            .expect("extension-candidate diagnostic");
        assert_eq!(d.message_ids(), &[MessageId::new(0)]);
        assert_eq!(d.severity(), crate::Severity::Info);
    }

    #[test]
    fn observed_session_times_stages_and_nests_spans() {
        let p = parse_program(fig7_text()).unwrap();
        let obs = Arc::new(systolic_obs::Obs::new());
        let analyzer = Analyzer::for_topology(&Topology::linear(4), &AnalysisConfig::default())
            .with_obs(Arc::clone(&obs));
        let trace = obs.tracer().new_trace();
        let root = obs.tracer().start(trace, None, "request");
        let root_id = root.id();
        let outcome = analyzer.diagnose_in(&p, Some(root.ctx()));
        obs.tracer().finish(root);
        assert!(outcome.is_certified());

        let stages = [
            "routes",
            "classification",
            "labeling",
            "competing",
            "requirements",
            "plan",
        ];
        let snap = obs.registry().snapshot();
        for stage in stages {
            let h = snap.histogram_value(names::ANALYZER_STAGE_DURATION, &[("stage", stage)]);
            assert_eq!(h.count, 1, "one sample for stage {stage}");
        }
        let events = obs.tracer().snapshot();
        assert_eq!(events.len(), stages.len() + 1);
        for event in events.iter().filter(|e| e.name != "request") {
            assert_eq!(event.trace, trace);
            assert_eq!(event.parent, Some(root_id), "stage {} nests", event.name);
        }
    }

    #[test]
    fn observed_session_counts_diagnostic_codes() {
        let p = parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message B: c1 -> c0\n\
             program c0 { R(B) W(A) }\n\
             program c1 { R(A) W(B) }\n",
        )
        .unwrap();
        let obs = Arc::new(systolic_obs::Obs::new());
        let analyzer = Analyzer::for_topology(&Topology::linear(2), &AnalysisConfig::default())
            .with_obs(Arc::clone(&obs));
        let outcome = analyzer.diagnose_in(&p, None);
        assert!(outcome.result().is_err());
        let snap = obs.registry().snapshot();
        assert_eq!(
            snap.counter_value(names::ANALYZER_DIAGNOSTICS, &[("code", "E-DEADLOCK")]),
            1
        );
        // The pipeline stops at the failing stage: routes, classification,
        // then labeling fails — later stages record no samples.
        assert_eq!(
            snap.histogram_value(names::ANALYZER_STAGE_DURATION, &[("stage", "labeling")])
                .count,
            1
        );
        assert_eq!(
            snap.histogram_value(names::ANALYZER_STAGE_DURATION, &[("stage", "plan")])
                .count,
            0
        );
    }

    #[test]
    fn verify_consistency_stage_passes_for_shipped_schemes() {
        let p = parse_program(fig7_text()).unwrap();
        let compiled = CompiledTopology::compile(&Topology::linear(4), &AnalysisConfig::default());
        let analyzer = Analyzer::builder(compiled).verify_consistency(true).build();
        assert!(analyzer.analyze(&p).is_ok());
    }
}
