//! The communication plan: the certified artifact handed to a runtime.
//!
//! A [`CommPlan`] bundles everything Theorem 1 needs at run time: the
//! consistent labeling (for ordered/simultaneous assignment), the message
//! routes (which queues each message will ask for), the competing sets and
//! the queue requirements (assumption (ii)).

use std::collections::BTreeMap;
use std::ops::Range;

use systolic_model::{Hop, Interval, MessageId, MessageRoutes, Route};

use crate::{CompetingSets, Label, Labeling, QueueRequirements};

/// A compiled deadlock-avoidance plan for one program on one topology.
///
/// Construct via [`analyze`](crate::analyze); the pieces can also be
/// assembled by hand for experiments (e.g. swapping in the trivial
/// labeling).
#[derive(Clone, Debug)]
pub struct CommPlan {
    labeling: Labeling,
    routes: MessageRoutes,
    competing: CompetingSets,
    requirements: QueueRequirements,
}

impl CommPlan {
    /// Assembles a plan from its parts.
    #[must_use]
    pub fn new(
        labeling: Labeling,
        routes: MessageRoutes,
        competing: CompetingSets,
        requirements: QueueRequirements,
    ) -> Self {
        CommPlan {
            labeling,
            routes,
            competing,
            requirements,
        }
    }

    /// The message labeling.
    #[must_use]
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// The label of one message.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    #[must_use]
    pub fn label(&self, m: MessageId) -> Label {
        self.labeling.label(m)
    }

    /// All message routes.
    #[must_use]
    pub fn routes(&self) -> &MessageRoutes {
        &self.routes
    }

    /// The route of one message.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    #[must_use]
    pub fn route(&self, m: MessageId) -> &Route {
        self.routes.route(m)
    }

    /// The competing-message sets.
    #[must_use]
    pub fn competing(&self) -> &CompetingSets {
        &self.competing
    }

    /// The queue requirements (Theorem 1 assumption (ii) data).
    #[must_use]
    pub fn requirements(&self) -> &QueueRequirements {
        &self.requirements
    }

    /// Per-direction sub-pools of queue indices on each interval.
    ///
    /// The ordered/simultaneous assignment rules only constrain
    /// *competing* (same-direction) messages; two opposite-direction
    /// messages are invisible to each other under the rules, yet they
    /// would share the physical pool — and can then hold-and-wait across
    /// intervals into a deadlock the rules never see. Theorem 1's
    /// compatibility clause ("…or can be guaranteed to secure a queue in
    /// the future") demands each competing set its own guaranteed supply,
    /// so each direction draws from its own range of queue indices, sized
    /// by this plan's per-hop requirement. Both runtimes — the
    /// simulator's compatible policy and the threaded controller — derive
    /// their partitions from this one method, so they cannot drift.
    #[must_use]
    pub fn direction_queue_ranges(&self) -> BTreeMap<Hop, Range<usize>> {
        let mut ranges = BTreeMap::new();
        let mut next_start: BTreeMap<Interval, usize> = BTreeMap::new();
        for (hop, _) in self.competing.iter() {
            let need = self.requirements.on_hop(hop);
            let start = next_start.entry(hop.interval()).or_insert(0);
            ranges.insert(hop, *start..*start + need);
            *start += need;
        }
        ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{label_messages, LookaheadLimits};
    use systolic_model::{parse_program, Topology};

    #[test]
    fn plan_exposes_its_parts() {
        let p = parse_program(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\n",
        )
        .unwrap();
        let routes = MessageRoutes::compute(&p, &Topology::linear(2)).unwrap();
        let competing = CompetingSets::compute(&routes);
        let labeling = label_messages(&p, &LookaheadLimits::disabled(&p))
            .unwrap()
            .into_labeling();
        let requirements = QueueRequirements::compute(&competing, &labeling);
        let plan = CommPlan::new(labeling, routes, competing, requirements);

        let a = p.message_id("A").unwrap();
        assert_eq!(plan.label(a), Label::integer(1));
        assert_eq!(plan.route(a).num_hops(), 1);
        assert_eq!(plan.requirements().max_per_interval(), 1);
        assert_eq!(plan.competing().len(), 1);
        assert_eq!(plan.labeling().len(), 1);
        assert_eq!(plan.routes().len(), 1);
    }
}
