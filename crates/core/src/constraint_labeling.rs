//! A complete consistent-labeling scheme via constraint solving.
//!
//! The paper's Section 6 scheme ([`label_messages`](crate::label_messages))
//! is faithful to the text but *incomplete*: rules 1c/1d assign labels to
//! messages whose own ordering constraints have not been examined yet, and
//! rule 1a's "larger than all labels currently in use" can then leapfrog a
//! pending constraint chain, wedging rule 1b (a concrete 6-cell witness
//! lives in this module's tests). The paper itself notes that "many
//! labeling schemes can be used as long as they produce a consistent
//! labeling" — this module provides one that always succeeds.
//!
//! Consistency ("each cell program will write to or read from messages with
//! nondecreasing labels") is a system of constraints:
//!
//! * `label(a) <= label(b)` whenever `a` is accessed immediately before `b`
//!   somewhere in some cell program;
//! * `label(a) == label(b)` for related messages (rule 1c) and for messages
//!   skipped over while locating an executable pair under lookahead
//!   (Section 8.2 / rule 1d).
//!
//! Collapsing the strongly-connected components of the `<=` digraph
//! (augmented with the equality edges in both directions) and numbering the
//! resulting DAG in topological layers yields a consistent labeling that
//! (a) always exists, and (b) merges labels *only* where the constraints
//! force it — which is what keeps the simultaneous-assignment queue
//! requirement small.

use systolic_model::{MessageId, Program};

use crate::{
    classify_with, Classification, CoreError, Label, Labeling, LookaheadLimits, RelatedMessages,
};

/// Runs the constraint-solving labeling scheme.
///
/// Like the Section 6 scheme, it requires the program to be deadlock-free
/// under `limits`; unlike it, it never fails on deadlock-free input.
///
/// # Errors
///
/// Returns [`CoreError::ProgramDeadlocked`] if the crossing-off procedure
/// (with `limits`) stalls.
pub fn label_messages_robust(
    program: &Program,
    limits: &LookaheadLimits,
) -> Result<Labeling, CoreError> {
    // Deadlock-freedom check + the skip sets for rule-1d equalities.
    let classification = classify_with(program, limits);
    let trace = match &classification {
        Classification::DeadlockFree(trace) => trace,
        Classification::Deadlocked { trace, stuck } => {
            return Err(CoreError::ProgramDeadlocked {
                crossed_words: trace.total_pairs(),
                remaining_ops: stuck.remaining_ops,
            });
        }
    };

    let n = program.num_messages();
    // Adjacency of the <= digraph, with equalities as edges both ways.
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    let add_le = |a: MessageId, b: MessageId, succ: &mut Vec<Vec<usize>>| {
        if a != b && !succ[a.index()].contains(&b.index()) {
            succ[a.index()].push(b.index());
        }
    };

    // Per-cell consecutive accesses: label(prev) <= label(next).
    for cell in program.cell_ids() {
        let ops = program.cell(cell);
        for w in ops.ops().windows(2) {
            add_le(w[0].message(), w[1].message(), &mut succ);
        }
    }
    // Rule 1c: related messages are equal.
    let related = RelatedMessages::of(program);
    for class in related.classes() {
        for pair in class.windows(2) {
            add_le(pair[0], pair[1], &mut succ);
            add_le(pair[1], pair[0], &mut succ);
        }
    }
    // Rule 1d: skipped-over messages share the pair's label.
    for pair in trace.pairs() {
        for &skipped in pair.skipped.keys() {
            add_le(pair.message, skipped, &mut succ);
            add_le(skipped, pair.message, &mut succ);
        }
    }

    let component = scc(&succ);
    // Kosaraju numbers components in topological order (every cross-
    // component edge goes from a lower-numbered to a higher-numbered
    // component), so `component index + 1` is itself a consistent labeling.
    // Using the *index* rather than a longest-path layer keeps labels
    // distinct wherever the constraints do not force equality: equal labels
    // trigger the simultaneous-assignment rule and cost extra queues, so
    // merging only forced classes minimizes the hardware requirement.
    let labels = (0..n)
        .map(|m| Label::integer(component[m] as i64 + 1))
        .collect();
    Ok(Labeling::from_labels(labels))
}

/// Kosaraju's algorithm (iterative), returning the component index of each
/// node, numbered in **topological order** of the condensation: every
/// cross-component edge goes from a lower-numbered component to a
/// higher-numbered one.
fn scc(succ: &[Vec<usize>]) -> Vec<usize> {
    let n = succ.len();
    // Pass 1: finish order on the original graph.
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for start in 0..n {
        if visited[start] {
            continue;
        }
        // Iterative DFS with explicit edge indices.
        let mut stack = vec![(start, 0usize)];
        visited[start] = true;
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            if *idx < succ[node].len() {
                let next = succ[node][*idx];
                *idx += 1;
                if !visited[next] {
                    visited[next] = true;
                    stack.push((next, 0));
                }
            } else {
                order.push(node);
                stack.pop();
            }
        }
    }
    // Pass 2: reverse graph, process in reverse finish order.
    let mut pred: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (a, nexts) in succ.iter().enumerate() {
        for &b in nexts {
            pred[b].push(a);
        }
    }
    let mut component = vec![usize::MAX; n];
    let mut count = 0;
    for &start in order.iter().rev() {
        if component[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        component[start] = count;
        while let Some(node) = stack.pop() {
            for &p in &pred[node] {
                if component[p] == usize::MAX {
                    component[p] = count;
                    stack.push(p);
                }
            }
        }
        count += 1;
    }
    component
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_consistency, label_messages};
    use systolic_model::parse_program;

    #[test]
    fn robust_labels_are_consistent_on_fig7() {
        let p = systolic_workloads::fig7(3);
        let limits = LookaheadLimits::disabled(&p);
        let labeling = label_messages_robust(&p, &limits).unwrap();
        assert!(check_consistency(&p, &labeling).is_empty());
        // All three messages get distinct labels (nothing forces equality),
        // with B above both A (c2: R(A)… before W(B)…) and C (c3: R(C)…
        // before R(B)…) — so, as in the paper, one queue per interval
        // suffices.
        let a = labeling.label(p.message_id("A").unwrap());
        let b = labeling.label(p.message_id("B").unwrap());
        let c = labeling.label(p.message_id("C").unwrap());
        assert!(a < b && c < b, "expected {a} < {b} and {c} < {b}");
        assert_ne!(a, c, "independent messages keep distinct labels");
    }

    #[test]
    fn related_messages_collapse_to_one_label() {
        let p = systolic_workloads::fig9();
        let limits = LookaheadLimits::disabled(&p);
        let labeling = label_messages_robust(&p, &limits).unwrap();
        assert_eq!(
            labeling.label(p.message_id("A").unwrap()),
            labeling.label(p.message_id("B").unwrap())
        );
    }

    #[test]
    fn deadlocked_input_is_rejected() {
        let p = systolic_workloads::fig5_p3();
        let limits = LookaheadLimits::disabled(&p);
        let err = label_messages_robust(&p, &limits).unwrap_err();
        assert!(matches!(err, CoreError::ProgramDeadlocked { .. }));
    }

    /// The witness program on which the literal Section 6 scheme wedges
    /// (rule 1c labels M3 before its constraints are visible; rule 1a then
    /// leapfrogs it with M8; M2 sits between them: M8 <= M2 <= M3 becomes
    /// 5 <= M2 <= 4). The constraint solver handles it.
    #[test]
    fn witness_where_section6_wedges_but_solver_succeeds() {
        let p = parse_program(
            "cells 6\n\
             message M0: c5 -> c2\n\
             message M1: c1 -> c4\n\
             message M2: c3 -> c0\n\
             message M3: c0 -> c4\n\
             message M4: c4 -> c2\n\
             message M5: c0 -> c4\n\
             message M6: c2 -> c1\n\
             message M7: c4 -> c2\n\
             message M8: c2 -> c3\n\
             program c0 { W(M5) W(M5) R(M2) W(M3) }\n\
             program c1 { R(M6) R(M6) W(M1) W(M1) }\n\
             program c2 { R(M4) R(M4) W(M6) W(M6) W(M8) R(M7) R(M7) R(M0) R(M0) }\n\
             program c3 { R(M8) W(M2) }\n\
             program c4 { W(M4) W(M4) R(M5) R(M5) R(M1) R(M3) R(M1) W(M7) W(M7) }\n\
             program c5 { W(M0) W(M0) }\n",
        )
        .unwrap();
        let limits = LookaheadLimits::disabled(&p);

        // The faithful Section 6 implementation reports the wedge...
        let err = label_messages(&p, &limits).unwrap_err();
        assert!(matches!(err, CoreError::LabelConflict { .. }));

        // ...the constraint solver produces a consistent labeling.
        let labeling = label_messages_robust(&p, &limits).unwrap();
        assert!(check_consistency(&p, &labeling).is_empty());

        // And the forced equality (M1 ~ M3, related in c4) holds.
        let m1 = p.message_id("M1").unwrap();
        let m3 = p.message_id("M3").unwrap();
        assert_eq!(labeling.label(m1), labeling.label(m3));
    }

    #[test]
    fn lookahead_skip_equalities_are_honored() {
        // Locating W(B) skips W(A)x4: A and B must share a label.
        let p = parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message B: c0 -> c1\n\
             program c0 { W(A)*4 W(B) }\n\
             program c1 { R(B) R(A)*4 }\n",
        )
        .unwrap();
        let limits = LookaheadLimits::uniform(&p, 4);
        let labeling = label_messages_robust(&p, &limits).unwrap();
        assert_eq!(
            labeling.label(p.message_id("A").unwrap()),
            labeling.label(p.message_id("B").unwrap())
        );
    }

    #[test]
    fn chains_get_strictly_increasing_labels() {
        // Three messages in strict sequence: distinct, increasing labels.
        let p = parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message B: c0 -> c1\n\
             message C: c0 -> c1\n\
             program c0 { W(A) W(B) W(C) }\n\
             program c1 { R(A) R(B) R(C) }\n",
        )
        .unwrap();
        let limits = LookaheadLimits::disabled(&p);
        let labeling = label_messages_robust(&p, &limits).unwrap();
        let l = |name: &str| labeling.label(p.message_id(name).unwrap());
        assert!(l("A") < l("B") && l("B") < l("C"));
        assert_eq!(l("A"), Label::integer(1));
    }

    #[test]
    fn unused_messages_still_get_a_label() {
        let p = parse_program(
            "cells 2\n\
             message A: c0 -> c1\n\
             message GHOST: c0 -> c1\n\
             program c0 { W(A) }\n\
             program c1 { R(A) }\n",
        )
        .unwrap();
        let limits = LookaheadLimits::disabled(&p);
        let labeling = label_messages_robust(&p, &limits).unwrap();
        // Unused messages are unconstrained: any label keeps consistency.
        assert_eq!(labeling.len(), 2);
        assert!(check_consistency(&p, &labeling).is_empty());
    }
}
