//! Lookahead skip limits — rule R2 of the paper (Section 8.1).
//!
//! "The total number of write operations to a message that are skipped
//! should not be greater than the total size of the queues that the message
//! will cross." A message crossing `h` intervals whose queues each buffer
//! `c` words may have at most `h·c` writes skipped over.

use systolic_model::{MessageId, MessageRoutes, Program};

/// Per-message bounds on how many of its writes lookahead may skip.
///
/// `None` means *unbounded*: the iWarp-style queue-extension mechanism is
/// assumed available for that message, so skipped words can always spill
/// into local memory (paper, Section 8.1). The number of skips is still
/// recorded so the analysis can report when extension would actually engage.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LookaheadLimits {
    per_message: Vec<Option<usize>>,
}

impl LookaheadLimits {
    /// No lookahead at all: zero skips for every message. With these limits
    /// the crossing-off procedure degenerates to the basic Section 3 form.
    #[must_use]
    pub fn disabled(program: &Program) -> Self {
        LookaheadLimits {
            per_message: vec![Some(0); program.num_messages()],
        }
    }

    /// The same skip budget for every message.
    #[must_use]
    pub fn uniform(program: &Program, limit: usize) -> Self {
        LookaheadLimits {
            per_message: vec![Some(limit); program.num_messages()],
        }
    }

    /// Unbounded skipping for every message (queue extension everywhere).
    #[must_use]
    pub fn unbounded(program: &Program) -> Self {
        LookaheadLimits {
            per_message: vec![None; program.num_messages()],
        }
    }

    /// Rule R2 proper: each message's budget is the total capacity of the
    /// queues along its route — `num_hops × capacity_per_queue`
    /// (saturating, so absurd capacities degrade to effectively-unbounded
    /// budgets instead of wrapping to tiny ones).
    #[must_use]
    pub fn from_routes(routes: &MessageRoutes, capacity_per_queue: usize) -> Self {
        LookaheadLimits {
            per_message: routes
                .iter()
                .map(|(_, r)| Some(r.num_hops().saturating_mul(capacity_per_queue)))
                .collect(),
        }
    }

    /// Builds limits from an explicit per-message table.
    #[must_use]
    pub fn from_table(per_message: Vec<Option<usize>>) -> Self {
        LookaheadLimits { per_message }
    }

    /// The skip budget of `message` (`None` = unbounded).
    ///
    /// # Panics
    ///
    /// Panics if `message` is out of range.
    #[must_use]
    pub fn limit(&self, message: MessageId) -> Option<usize> {
        self.per_message[message.index()]
    }

    /// `true` if `count` skips of `message` are within budget.
    #[must_use]
    pub fn allows(&self, message: MessageId, count: usize) -> bool {
        match self.limit(message) {
            Some(max) => count <= max,
            None => true,
        }
    }

    /// The full per-message budget table (`None` = unbounded), in message
    /// declaration order.
    #[must_use]
    pub fn as_table(&self) -> &[Option<usize>] {
        &self.per_message
    }

    /// Number of messages covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.per_message.len()
    }

    /// `true` if no messages are covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.per_message.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::{ProgramBuilder, Topology};

    fn sample() -> Program {
        let mut b = ProgramBuilder::new(3);
        b.message("A", 0, 2).unwrap();
        b.message("B", 0, 1).unwrap();
        b.write(0, "A").unwrap().read(2, "A").unwrap();
        b.write(0, "B").unwrap().read(1, "B").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn disabled_allows_zero_only() {
        let p = sample();
        let l = LookaheadLimits::disabled(&p);
        let m = MessageId::new(0);
        assert!(l.allows(m, 0));
        assert!(!l.allows(m, 1));
        assert_eq!(l.len(), 2);
        assert!(!l.is_empty());
    }

    #[test]
    fn uniform_and_unbounded() {
        let p = sample();
        let l = LookaheadLimits::uniform(&p, 2);
        assert!(l.allows(MessageId::new(1), 2));
        assert!(!l.allows(MessageId::new(1), 3));
        let u = LookaheadLimits::unbounded(&p);
        assert!(u.allows(MessageId::new(0), 10_000));
        assert_eq!(u.limit(MessageId::new(0)), None);
    }

    #[test]
    fn from_routes_multiplies_hops_by_capacity() {
        let p = sample();
        let routes = MessageRoutes::compute(&p, &Topology::linear(3)).unwrap();
        let l = LookaheadLimits::from_routes(&routes, 2);
        // A crosses 2 intervals => budget 4; B crosses 1 => budget 2.
        assert_eq!(l.limit(MessageId::new(0)), Some(4));
        assert_eq!(l.limit(MessageId::new(1)), Some(2));
    }

    #[test]
    fn from_table_roundtrip() {
        let l = LookaheadLimits::from_table(vec![Some(1), None]);
        assert_eq!(l.limit(MessageId::new(0)), Some(1));
        assert_eq!(l.limit(MessageId::new(1)), None);
    }
}
