//! Content fingerprints for analysis requests.
//!
//! The serving layer caches analysis results; its cache key must cover
//! everything [`analyze`](crate::analyze) reads — the program, the topology
//! *and* the analysis configuration (lookahead assumption, hardware queue
//! count). This module extends the model crate's [`CanonicalHash`] to the
//! analysis configuration types and provides [`request_fingerprint`], the
//! canonical 128-bit cache key for one `(Program, Topology,
//! AnalysisConfig)` triple.

use systolic_model::{CanonicalHash, ContentHasher, Program, Topology};

use crate::{
    AnalysisConfig, CommPlan, CompetingSets, Label, Labeling, Lookahead, LookaheadLimits,
    QueueRequirements,
};

impl CanonicalHash for LookaheadLimits {
    fn canonical_hash(&self, hasher: &mut ContentHasher) {
        hasher.write_usize(self.len());
        for limit in self.as_table() {
            match limit {
                None => hasher.write_u8(0),
                Some(n) => {
                    hasher.write_u8(1);
                    hasher.write_usize(*n);
                }
            }
        }
    }
}

impl CanonicalHash for Lookahead {
    fn canonical_hash(&self, hasher: &mut ContentHasher) {
        match self {
            Lookahead::Disabled => hasher.write_u8(0),
            Lookahead::PerQueueCapacity(c) => {
                hasher.write_u8(1);
                hasher.write_usize(*c);
            }
            Lookahead::Explicit(limits) => {
                hasher.write_u8(2);
                limits.canonical_hash(hasher);
            }
            Lookahead::Unbounded => hasher.write_u8(3),
        }
    }
}

impl CanonicalHash for AnalysisConfig {
    fn canonical_hash(&self, hasher: &mut ContentHasher) {
        hasher.write_u8(b'C');
        self.lookahead.canonical_hash(hasher);
        hasher.write_usize(self.queues_per_interval);
    }
}

impl CanonicalHash for Label {
    fn canonical_hash(&self, hasher: &mut ContentHasher) {
        // Labels are stored reduced with positive denominators, so the
        // (numerator, denominator) pair is canonical for the value.
        hasher.write_i64(self.numerator());
        hasher.write_i64(self.denominator());
    }
}

impl CanonicalHash for Labeling {
    fn canonical_hash(&self, hasher: &mut ContentHasher) {
        hasher.write_u8(b'L');
        hasher.write_usize(self.len());
        for (_, label) in self.iter() {
            label.canonical_hash(hasher);
        }
    }
}

impl CanonicalHash for CompetingSets {
    fn canonical_hash(&self, hasher: &mut ContentHasher) {
        hasher.write_u8(b'S');
        hasher.write_usize(self.len());
        for (hop, messages) in self.iter() {
            hasher.write_usize(hop.from().index());
            hasher.write_usize(hop.to().index());
            hasher.write_usize(messages.len());
            for m in messages {
                hasher.write_usize(m.index());
            }
        }
    }
}

impl CanonicalHash for QueueRequirements {
    fn canonical_hash(&self, hasher: &mut ContentHasher) {
        // Length-prefix both sections so the hop-stream/interval-stream
        // boundary is unambiguous in the hash input (injective framing).
        hasher.write_u8(b'Q');
        hasher.write_usize(self.iter_hops().count());
        for (hop, need) in self.iter_hops() {
            hasher.write_usize(hop.from().index());
            hasher.write_usize(hop.to().index());
            hasher.write_usize(need);
        }
        hasher.write_usize(self.iter_intervals().count());
        for (interval, need) in self.iter_intervals() {
            hasher.write_usize(interval.lo().index());
            hasher.write_usize(interval.hi().index());
            hasher.write_usize(need);
        }
    }
}

impl CanonicalHash for CommPlan {
    fn canonical_hash(&self, hasher: &mut ContentHasher) {
        hasher.write_u8(b'N');
        self.labeling().canonical_hash(hasher);
        self.routes().canonical_hash(hasher);
        self.competing().canonical_hash(hasher);
        self.requirements().canonical_hash(hasher);
    }
}

impl CommPlan {
    /// The process-independent 128-bit content fingerprint of this plan —
    /// every label, route, competing set and queue requirement feeds in,
    /// so two plans fingerprint equal exactly when they are byte-for-byte
    /// the same certified artifact. The parity property tests use it to
    /// hold [`Analyzer`](crate::Analyzer) to the legacy
    /// [`analyze`](crate::analyze) output.
    #[must_use]
    pub fn fingerprint(&self) -> u128 {
        self.content_hash()
    }
}

/// The canonical 128-bit cache key of one analysis request.
///
/// Two requests receive the same fingerprint exactly when they would be
/// indistinguishable to [`analyze`](crate::analyze): same program (cell
/// names, message declarations, op lists), same topology and same
/// configuration.
///
/// # Examples
///
/// ```
/// use systolic_core::{request_fingerprint, AnalysisConfig};
/// use systolic_model::{parse_program, Topology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\n";
/// let p = parse_program(text)?;
/// let q = parse_program(text)?;
/// let config = AnalysisConfig::default();
/// let t = Topology::linear(2);
/// assert_eq!(
///     request_fingerprint(&p, &t, &config),
///     request_fingerprint(&q, &t, &config),
/// );
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn request_fingerprint(
    program: &Program,
    topology: &Topology,
    config: &AnalysisConfig,
) -> u128 {
    let mut hasher = ContentHasher::new();
    program.canonical_hash(&mut hasher);
    topology.canonical_hash(&mut hasher);
    config.canonical_hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::parse_program;

    fn sample() -> Program {
        parse_program(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A)*2 }\nprogram c1 { R(A)*2 }\n",
        )
        .unwrap()
    }

    #[test]
    fn fingerprint_is_deterministic() {
        let p = sample();
        let t = Topology::linear(2);
        let c = AnalysisConfig::default();
        assert_eq!(
            request_fingerprint(&p, &t, &c),
            request_fingerprint(&p, &t, &c)
        );
    }

    #[test]
    fn every_component_matters() {
        let p = sample();
        let t = Topology::linear(2);
        let c = AnalysisConfig::default();
        let base = request_fingerprint(&p, &t, &c);

        let other_program = parse_program(
            "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\n",
        )
        .unwrap();
        assert_ne!(base, request_fingerprint(&other_program, &t, &c));

        assert_ne!(base, request_fingerprint(&p, &Topology::ring(3), &c));

        let more_queues = AnalysisConfig {
            queues_per_interval: 2,
            ..c.clone()
        };
        assert_ne!(base, request_fingerprint(&p, &t, &more_queues));

        let lookahead = AnalysisConfig {
            lookahead: Lookahead::Unbounded,
            ..c
        };
        assert_ne!(base, request_fingerprint(&p, &t, &lookahead));
    }

    #[test]
    fn lookahead_variants_hash_distinctly() {
        let p = sample();
        let variants = [
            Lookahead::Disabled,
            Lookahead::PerQueueCapacity(0),
            Lookahead::PerQueueCapacity(1),
            Lookahead::Explicit(LookaheadLimits::disabled(&p)),
            Lookahead::Explicit(LookaheadLimits::unbounded(&p)),
            Lookahead::Unbounded,
        ];
        let hashes: Vec<u128> = variants.iter().map(CanonicalHash::content_hash).collect();
        for (i, a) in hashes.iter().enumerate() {
            for b in &hashes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
