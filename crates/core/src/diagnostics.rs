//! Structured analysis diagnostics.
//!
//! The legacy [`analyze`](crate::analyze) entry point reports failure as a
//! single [`CoreError`] — fine for a library caller, useless for a client
//! on the other side of the `systolicd` wire who wants to know *which*
//! messages deadlocked or *which* interval is short of queues. The
//! [`Analyzer`](crate::Analyzer) instead accumulates [`Diagnostic`]s as
//! its stages run: each carries a machine-readable [`DiagnosticCode`], a
//! [`Severity`], a human-readable message, and the offending
//! [`MessageId`]s / [`CellId`]s, so front ends can render or route them
//! without parsing prose.

use core::fmt;

use systolic_model::{CellId, MessageId, ModelError};

use crate::CoreError;

/// How bad a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Informational: the analysis succeeded, this is advisory detail
    /// (e.g. a message that would engage the queue-extension mechanism).
    Info,
    /// Suspicious but not fatal (e.g. the Section 6 labeling scheme wedged
    /// and the constraint solver was used instead).
    Warning,
    /// The analysis cannot certify the program.
    Error,
}

impl Severity {
    /// Stable lower-case name (`"info"`, `"warning"`, `"error"`), used by
    /// the JSONL wire format.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Machine-readable diagnostic codes, one per way an analysis stage can
/// object. The string forms ([`DiagnosticCode::as_str`]) are a stable wire
/// contract: `E-*` are errors, `W-*` warnings, `I-*` informational.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[non_exhaustive]
pub enum DiagnosticCode {
    /// The program and topology disagree on the number of cells.
    CellCountMismatch,
    /// A message cannot be routed over the topology.
    RouteFailure,
    /// Some other model-level validation failed.
    ModelInvalid,
    /// The crossing-off procedure stalled: the program is deadlocked
    /// (paper, Section 3.2).
    Deadlock,
    /// No consistent label exists for a message (paper, Section 6).
    LabelConflict,
    /// A labeling violates the Section 5 consistency definition.
    InconsistentLabeling,
    /// An interval needs more queues than the hardware provides
    /// (Theorem 1 assumption (ii)).
    Infeasible,
    /// The literal Section 6 scheme wedged; the constraint-solving scheme
    /// produced the labels instead.
    Section6Fallback,
    /// Lookahead skipped more writes of a message than fit in its route's
    /// queues: the iWarp queue-extension mechanism would engage
    /// (paper, Section 8.1).
    ExtensionCandidate,
}

impl DiagnosticCode {
    /// The stable wire string of this code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DiagnosticCode::CellCountMismatch => "E-CELL-COUNT",
            DiagnosticCode::RouteFailure => "E-ROUTE",
            DiagnosticCode::ModelInvalid => "E-MODEL",
            DiagnosticCode::Deadlock => "E-DEADLOCK",
            DiagnosticCode::LabelConflict => "E-LABEL-CONFLICT",
            DiagnosticCode::InconsistentLabeling => "E-INCONSISTENT-LABELING",
            DiagnosticCode::Infeasible => "E-INFEASIBLE",
            DiagnosticCode::Section6Fallback => "W-SECTION6-FALLBACK",
            DiagnosticCode::ExtensionCandidate => "I-EXTENSION-CANDIDATE",
        }
    }

    /// The severity this code carries unless overridden.
    #[must_use]
    pub fn default_severity(self) -> Severity {
        match self {
            DiagnosticCode::CellCountMismatch
            | DiagnosticCode::RouteFailure
            | DiagnosticCode::ModelInvalid
            | DiagnosticCode::Deadlock
            | DiagnosticCode::LabelConflict
            | DiagnosticCode::InconsistentLabeling
            | DiagnosticCode::Infeasible => Severity::Error,
            DiagnosticCode::Section6Fallback => Severity::Warning,
            DiagnosticCode::ExtensionCandidate => Severity::Info,
        }
    }
}

impl fmt::Display for DiagnosticCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured finding from an analysis stage.
///
/// # Examples
///
/// ```
/// use systolic_core::{Diagnostic, DiagnosticCode, Severity};
/// use systolic_model::MessageId;
///
/// let d = Diagnostic::new(DiagnosticCode::Deadlock, "program is deadlocked")
///     .with_messages([MessageId::new(0)]);
/// assert_eq!(d.code().as_str(), "E-DEADLOCK");
/// assert_eq!(d.severity(), Severity::Error);
/// assert_eq!(d.message_ids(), &[MessageId::new(0)]);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    code: DiagnosticCode,
    severity: Severity,
    message: String,
    messages: Vec<MessageId>,
    cells: Vec<CellId>,
}

impl Diagnostic {
    /// A diagnostic with the code's default severity and no ids attached.
    #[must_use]
    pub fn new(code: DiagnosticCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            messages: Vec::new(),
            cells: Vec::new(),
        }
    }

    /// Attaches the offending message ids.
    #[must_use]
    pub fn with_messages(mut self, messages: impl IntoIterator<Item = MessageId>) -> Self {
        self.messages.extend(messages);
        self
    }

    /// Attaches the offending cell ids.
    #[must_use]
    pub fn with_cells(mut self, cells: impl IntoIterator<Item = CellId>) -> Self {
        self.cells.extend(cells);
        self
    }

    /// Overrides the severity (rarely needed; codes carry a default).
    #[must_use]
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// The machine-readable code.
    #[must_use]
    pub fn code(&self) -> DiagnosticCode {
        self.code
    }

    /// The severity.
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// The human-readable description.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The offending messages (may be empty).
    #[must_use]
    pub fn message_ids(&self) -> &[MessageId] {
        &self.messages
    }

    /// The offending cells (may be empty).
    #[must_use]
    pub fn cell_ids(&self) -> &[CellId] {
        &self.cells
    }

    /// The baseline diagnostic for a [`CoreError`], with whatever ids the
    /// error itself carries. Analysis stages usually construct richer
    /// diagnostics with more context; this is the fallback mapping (used
    /// e.g. for cached legacy outcomes).
    #[must_use]
    pub fn from_error(error: &CoreError) -> Self {
        match error {
            CoreError::Model(ModelError::CellCountMismatch { .. }) => {
                Diagnostic::new(DiagnosticCode::CellCountMismatch, error.to_string())
            }
            CoreError::Model(ModelError::NoRoute { from, to }) => {
                Diagnostic::new(DiagnosticCode::RouteFailure, error.to_string())
                    .with_cells([*from, *to])
            }
            CoreError::Model(_) => Diagnostic::new(DiagnosticCode::ModelInvalid, error.to_string()),
            CoreError::ProgramDeadlocked { .. } => {
                Diagnostic::new(DiagnosticCode::Deadlock, error.to_string())
            }
            CoreError::LabelConflict { message, .. } => {
                Diagnostic::new(DiagnosticCode::LabelConflict, error.to_string())
                    .with_messages([*message])
            }
            CoreError::InconsistentLabeling { .. } => {
                Diagnostic::new(DiagnosticCode::InconsistentLabeling, error.to_string())
            }
            CoreError::Infeasible { hop, .. } => {
                Diagnostic::new(DiagnosticCode::Infeasible, error.to_string())
                    .with_cells([hop.from(), hop.to()])
            }
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code.as_str(), self.message)
    }
}

/// An ordered list of [`Diagnostic`]s, accumulated as analysis stages run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty list.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.items.push(diagnostic);
    }

    /// All diagnostics, in the order the stages emitted them.
    #[must_use]
    pub fn as_slice(&self) -> &[Diagnostic] {
        &self.items
    }

    /// Iterates over the diagnostics.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> + '_ {
        self.items.iter()
    }

    /// Number of diagnostics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if nothing was reported.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` if any diagnostic is an error.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity() == Severity::Error)
    }

    /// Only the error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> + '_ {
        self.items
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// The highest severity present, or `None` when empty.
    #[must_use]
    pub fn max_severity(&self) -> Option<Severity> {
        self.items.iter().map(Diagnostic::severity).max()
    }
}

impl<'a> IntoIterator for &'a Diagnostics {
    type Item = &'a Diagnostic;
    type IntoIter = core::slice::Iter<'a, Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_model::Hop;

    #[test]
    fn codes_have_stable_strings_and_severities() {
        let codes = [
            DiagnosticCode::CellCountMismatch,
            DiagnosticCode::RouteFailure,
            DiagnosticCode::ModelInvalid,
            DiagnosticCode::Deadlock,
            DiagnosticCode::LabelConflict,
            DiagnosticCode::InconsistentLabeling,
            DiagnosticCode::Infeasible,
            DiagnosticCode::Section6Fallback,
            DiagnosticCode::ExtensionCandidate,
        ];
        for code in codes {
            let s = code.as_str();
            let expected = match s.as_bytes()[0] {
                b'E' => Severity::Error,
                b'W' => Severity::Warning,
                b'I' => Severity::Info,
                _ => panic!("code {s} must start with E/W/I"),
            };
            assert_eq!(code.default_severity(), expected, "{s}");
        }
        // Strings are distinct.
        let mut strings: Vec<&str> = codes.iter().map(|c| c.as_str()).collect();
        strings.sort_unstable();
        strings.dedup();
        assert_eq!(strings.len(), codes.len());
    }

    #[test]
    fn from_error_attaches_available_ids() {
        let d = Diagnostic::from_error(&CoreError::Infeasible {
            hop: Hop::new(CellId::new(1), CellId::new(2)),
            required: 2,
            available: 1,
        });
        assert_eq!(d.code(), DiagnosticCode::Infeasible);
        assert_eq!(d.cell_ids(), &[CellId::new(1), CellId::new(2)]);

        let d = Diagnostic::from_error(&CoreError::ProgramDeadlocked {
            crossed_words: 1,
            remaining_ops: 2,
        });
        assert_eq!(d.code(), DiagnosticCode::Deadlock);
        assert!(d.message().contains("deadlocked"));
    }

    #[test]
    fn list_filters_by_severity() {
        let mut diagnostics = Diagnostics::new();
        assert!(diagnostics.max_severity().is_none());
        diagnostics.push(Diagnostic::new(DiagnosticCode::ExtensionCandidate, "info"));
        assert!(!diagnostics.has_errors());
        assert_eq!(diagnostics.max_severity(), Some(Severity::Info));
        diagnostics.push(Diagnostic::new(DiagnosticCode::Deadlock, "boom"));
        assert!(diagnostics.has_errors());
        assert_eq!(diagnostics.errors().count(), 1);
        assert_eq!(diagnostics.len(), 2);
        assert_eq!(diagnostics.max_severity(), Some(Severity::Error));
        let rendered = diagnostics.as_slice()[1].to_string();
        assert_eq!(rendered, "[E-DEADLOCK] boom");
    }
}
