//! Plain-text/markdown tables, CSV output and small statistics helpers for
//! the experiment harness.
//!
//! No external dependencies: the `repro` binary and the benches use this to
//! print the paper-style tables recorded in `EXPERIMENTS.md`.
//!
//! # Examples
//!
//! ```
//! use systolic_report::Table;
//!
//! let mut t = Table::new(["policy", "outcome", "cycles"]);
//! t.row(["fifo", "deadlock", "17"]);
//! t.row(["compatible", "completed", "23"]);
//! let text = t.to_markdown();
//! assert!(text.contains("| policy"));
//! assert!(text.contains("| compatible"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use core::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }

    /// Renders as aligned plain text.
    #[must_use]
    pub fn to_text(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}");
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&mut out, &rule);
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (cell, w) in cells.iter().zip(&widths) {
                let _ = write!(out, " {cell:<w$} |");
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&mut out, &rule);
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders as CSV with RFC 4180 quoting: cells containing commas,
    /// double quotes, or line breaks are wrapped in double quotes, with
    /// embedded quotes doubled.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            let joined: Vec<String> = cells.iter().map(|c| csv_escape(c)).collect();
            out.push_str(&joined.join(","));
            out.push('\n');
        };
        line(&mut out, &self.headers);
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Quotes one CSV cell per RFC 4180: wrap in `"` when the cell contains a
/// comma, quote or line break, doubling embedded quotes.
fn csv_escape(cell: &str) -> String {
    if cell.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_owned()
    }
}

/// Mean of a sample (0.0 for empty input).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation (0.0 for fewer than two points).
#[must_use]
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// The `p`-th percentile of a sample by nearest-rank (0.0 for empty input).
///
/// `p` is clamped to `0.0..=100.0`; `p = 0` returns the minimum and
/// `p = 100` the maximum. The sample need not be sorted.
#[must_use]
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
    percentile_sorted(&sorted, p)
}

/// [`percentile`] over an already-sorted sample, skipping the copy and
/// sort — what latency reservoirs (`systolic_service`) use after sorting
/// once for several percentiles.
#[must_use]
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Formats a ratio like `3.2x` with one decimal.
#[must_use]
pub fn ratio(numerator: f64, denominator: f64) -> String {
    if denominator == 0.0 {
        "n/a".to_owned()
    } else {
        format!("{:.1}x", numerator / denominator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["a", "bb"]);
        t.row(["1", "2"]).row(["333", "4"]);
        t
    }

    #[test]
    fn text_is_aligned() {
        let text = sample().to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a    bb"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].starts_with("1"));
        assert!(lines[3].starts_with("333"));
    }

    #[test]
    fn markdown_has_pipes_and_rule() {
        let md = sample().to_markdown();
        assert!(md.starts_with("| a"));
        assert!(md.lines().nth(1).unwrap().contains("---"));
        assert_eq!(md.lines().count(), 4);
    }

    #[test]
    fn csv_joins_with_commas() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().next().unwrap(), "a,bb");
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn csv_quotes_commas_rfc4180() {
        let mut t = Table::new(["x"]);
        t.row(["a,b"]);
        assert_eq!(t.to_csv(), "x\n\"a,b\"\n");
    }

    #[test]
    fn csv_doubles_embedded_quotes() {
        let mut t = Table::new(["x"]);
        t.row(["say \"hi\""]);
        assert_eq!(t.to_csv(), "x\n\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn csv_quotes_newlines_and_carriage_returns() {
        let mut t = Table::new(["x", "y"]);
        t.row(["line1\nline2", "cr\rcell"]);
        assert_eq!(t.to_csv(), "x,y\n\"line1\nline2\",\"cr\rcell\"\n");
    }

    #[test]
    fn csv_leaves_plain_cells_unquoted() {
        let mut t = Table::new(["a", "b"]);
        t.row(["plain", "also plain"]);
        assert_eq!(t.to_csv(), "a,b\nplain,also plain\n");
    }

    #[test]
    fn csv_quotes_header_cells_too() {
        let t = Table::new(["a,b", "c"]);
        assert_eq!(t.to_csv(), "\"a,b\",c\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[1.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - 1.0).abs() < 1e-9);
        assert_eq!(ratio(6.0, 2.0), "3.0x");
        assert_eq!(ratio(1.0, 0.0), "n/a");
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        let xs = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 90.0), 5.0);
        assert_eq!(percentile(&xs, 150.0), 5.0); // clamped
    }

    #[test]
    fn percentile_edge_cases() {
        // Empty slice: 0.0 at every percentile, including the extremes.
        for p in [-10.0, 0.0, 50.0, 100.0, 200.0] {
            assert_eq!(percentile(&[], p), 0.0);
            assert_eq!(percentile_sorted(&[], p), 0.0);
        }
        // Single element: that element at every percentile.
        for p in [-1.0, 0.0, 0.1, 50.0, 99.9, 100.0, 101.0] {
            assert_eq!(percentile(&[7.5], p), 7.5);
        }
        // p = 0 is the minimum, p = 100 the maximum, even for pairs.
        assert_eq!(percentile(&[2.0, 9.0], 0.0), 2.0);
        assert_eq!(percentile(&[2.0, 9.0], 100.0), 9.0);
        // Negative p clamps to the minimum.
        assert_eq!(percentile(&[2.0, 9.0], -5.0), 2.0);
        // Unsorted input is sorted internally; ties are preserved.
        let xs = [9.0, 9.0, 1.0, 1.0];
        assert_eq!(percentile(&xs, 50.0), 1.0);
        assert_eq!(percentile(&xs, 75.0), 9.0);
    }

    #[test]
    fn percentile_sorted_matches_percentile() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [0.0, 1.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            assert_eq!(percentile(&xs, p), percentile_sorted(&sorted, p), "p={p}");
        }
    }

    #[test]
    fn empty_table_renders_headers() {
        let t = Table::new(["only"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.to_text().lines().count(), 2);
    }
}
