//! The analysis service: a worker pool over a bounded submission queue,
//! fronted by the sharded plan cache.
//!
//! Requests are `(Program, Topology, AnalysisConfig)` triples. Each is
//! fingerprinted ([`systolic_core::request_fingerprint`]); a cache hit
//! returns the shared `Arc`ed outcome immediately, a miss runs the staged
//! [`Analyzer`](systolic_core::Analyzer) pipeline and publishes the
//! outcome for every later identical request. With `verify` on, every
//! miss's certified plan is *chased* by a simulation replay: inline
//! through the worker's warm [`ArenaLru`], or — with `verify_threads ≥ 1`
//! — coalesced with the other chases queued in a batch window and fanned
//! out (mixed topologies and all) through one cross-topology
//! [`VerifyScheduler`].
//! Topology compilations are shared too: a second cache keyed by the
//! [`CompiledTopology`] fingerprint means the misses of a batch that all
//! name one topology compile it once and reuse the route closure.
//! Rejections carry the analyzer's structured
//! [`Diagnostic`](systolic_core::Diagnostic)s, so the wire layer can say
//! *why* a program is unsafe. Submission blocks when the bounded queue is
//! full — backpressure, not unbounded buffering, is the overload
//! response.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;
use systolic_core::{
    request_fingerprint, AnalysisConfig, Analyzer, CommPlan, CompiledTopology, CoreError,
    Diagnostic, EditError, EditOp, IncrementalConfig, IncrementalSession, Label, LabelingMethod,
    ReuseReport, RouteCacheStats,
};
use systolic_model::{CanonicalHash, ModelError, Op, Program, Topology};
use systolic_obs::{names, Counter, Gauge, Histogram, Obs, RegistrySnapshot, SpanCtx};
use systolic_report::Table;
use systolic_sim::{
    ArenaBudget, SchedulerStats, SimConfig, VerifyReport, VerifyScheduler, VerifyTaskError,
};
use systolic_workloads::TrafficItem;

use crate::snapshot::{self, SnapshotError};
use crate::{ArenaLru, BoundedQueue, CacheConfig, CacheStats, ShardedCache};

/// Default arena-LRU capacity ([`ServiceConfig::arena_cache_capacity`]) —
/// enough that a handful of interleaved topologies stop thrashing, small
/// enough that a fleet of workers stays cheap.
const DEFAULT_ARENA_CACHE_CAPACITY: usize = 4;

/// Default bound on the incremental session table
/// ([`ServiceConfig::session_capacity`]) — one warm session per active
/// interactive client, without letting a fleet of editors pin unbounded
/// analyzer state.
const DEFAULT_SESSION_CAPACITY: usize = 64;

/// Configuration of an [`AnalysisService`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads executing analyses. Clamped to ≥ 1.
    pub workers: usize,
    /// Shape of the sharded plan cache.
    pub cache: CacheConfig,
    /// Bounded submission-queue depth; producers block (backpressure)
    /// when this many requests are waiting.
    pub queue_depth: usize,
    /// Chase every *miss* with a simulator run of the certified plan.
    pub verify: bool,
    /// Dedicated verification parallelism for the chase. `0` (the
    /// default) chases inline in the analysis worker that computed the
    /// plan; `N ≥ 1` routes chases to the cross-topology
    /// [`VerifyScheduler`], which coalesces the chases queued within a
    /// batch window into one `N`-worker fan-out — so arena residency
    /// scales with `verify_threads ×` the arena budget, not `workers ×`
    /// budget, and verification CPU is capped independently of the
    /// analysis pool. Ignored unless `verify` is set.
    pub verify_threads: usize,
    /// Arenas each chasing thread keeps warm in its [`ArenaLru`]
    /// ([`ArenaBudget::Fixed`]). `0` sizes the LRUs automatically from
    /// the distinct-topology cardinality each thread actually observes
    /// ([`ArenaBudget::Auto`]). Overridden by
    /// [`arena_mem_budget`](ServiceConfig::arena_mem_budget) when set.
    pub arena_cache_capacity: usize,
    /// Optional byte budget per chasing thread's [`ArenaLru`]
    /// ([`ArenaBudget::MemBytes`]): arenas stay resident while their
    /// combined estimated footprint fits. Takes precedence over
    /// [`arena_cache_capacity`](ServiceConfig::arena_cache_capacity).
    pub arena_mem_budget: Option<usize>,
    /// Simulator configuration for verification runs.
    pub sim: SimConfig,
    /// Shape of the shared topology-compilation cache
    /// ([`CompiledTopology`] per distinct `(topology, config)`).
    pub compilation_cache: CacheConfig,
    /// Bound on the incremental session table: warm
    /// [`IncrementalSession`]s kept resident for `edit` requests, keyed by
    /// their current request fingerprint. Least-recently-edited sessions
    /// are evicted past this bound (clamped to ≥ 1); an evicted base can
    /// still be edited — the session re-seeds from the recorded request
    /// inputs at full-analysis cost.
    pub session_capacity: usize,
    /// Forwarded to [`IncrementalConfig::fallback_ratio`]: an edit batch
    /// dirtying more than this fraction of cells is reanalyzed from
    /// scratch instead of reusing warm stage artifacts.
    pub incremental_fallback_ratio: f64,
}

impl ServiceConfig {
    /// The [`ArenaBudget`] every chasing thread's [`ArenaLru`] enforces,
    /// resolved from
    /// [`arena_mem_budget`](ServiceConfig::arena_mem_budget) /
    /// [`arena_cache_capacity`](ServiceConfig::arena_cache_capacity).
    #[must_use]
    pub fn arena_budget(&self) -> ArenaBudget {
        match (self.arena_mem_budget, self.arena_cache_capacity) {
            (Some(bytes), _) => ArenaBudget::MemBytes(bytes),
            (None, 0) => ArenaBudget::Auto,
            (None, capacity) => ArenaBudget::Fixed(capacity),
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            cache: CacheConfig::default(),
            queue_depth: 64,
            verify: false,
            verify_threads: 0,
            arena_cache_capacity: DEFAULT_ARENA_CACHE_CAPACITY,
            arena_mem_budget: None,
            sim: SimConfig::default(),
            compilation_cache: CacheConfig {
                shards: 4,
                capacity_per_shard: 64,
            },
            session_capacity: DEFAULT_SESSION_CAPACITY,
            incremental_fallback_ratio: 0.5,
        }
    }
}

/// One analysis request.
#[derive(Clone, Debug)]
pub struct AnalysisRequest {
    /// Client-chosen identifier, echoed in the response.
    pub name: String,
    /// The program to analyze.
    pub program: Program,
    /// The topology it runs on.
    pub topology: Topology,
    /// Analysis configuration (lookahead, hardware queue count).
    pub config: AnalysisConfig,
}

impl AnalysisRequest {
    /// A request with the default [`AnalysisConfig`].
    #[must_use]
    pub fn new(name: impl Into<String>, program: Program, topology: Topology) -> Self {
        AnalysisRequest {
            name: name.into(),
            program,
            topology,
            config: AnalysisConfig::default(),
        }
    }

    /// Converts one item of workload [`traffic`](systolic_workloads::traffic)
    /// into a request (the item's queue count becomes the config's).
    #[must_use]
    pub fn from_traffic(item: &TrafficItem) -> Self {
        AnalysisRequest {
            name: item.name.clone(),
            program: item.program.clone(),
            topology: item.topology.clone(),
            config: AnalysisConfig {
                queues_per_interval: item.queues_per_interval,
                ..AnalysisConfig::default()
            },
        }
    }
}

/// A successful analysis, as cached and shared between identical requests.
#[derive(Clone, Debug)]
pub struct Certified {
    /// The certified communication plan.
    pub plan: Arc<CommPlan>,
    /// Which labeling scheme produced the labels.
    pub labeling_method: LabelingMethod,
    /// `(message name, label)` in declaration order.
    pub message_labels: Vec<(String, Label)>,
    /// Theorem 1 assumption (ii): the uniform queue count the plan needs.
    pub max_queues_per_interval: usize,
    /// The simulation chase, when the service ran one.
    pub verified: Option<VerifyReport>,
    /// Wall-clock cost of the original (cache-missing) computation.
    pub analysis_micros: u64,
    /// Non-fatal structured diagnostics the analyzer emitted (warnings
    /// such as a Section 6 fallback, advisories such as queue-extension
    /// candidates).
    pub diagnostics: Vec<Diagnostic>,
}

/// Why the service could not certify a request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ServiceError {
    /// The analysis itself refused (deadlocked, infeasible, model error).
    Analysis(CoreError),
    /// The analysis panicked; the worker caught the panic so one bad
    /// request cannot take down the pool or the daemon.
    Panicked(String),
}

impl ServiceError {
    /// The underlying analysis error, if this is one.
    #[must_use]
    pub fn as_analysis(&self) -> Option<&CoreError> {
        match self {
            ServiceError::Analysis(e) => Some(e),
            ServiceError::Panicked(_) => None,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Analysis(e) => write!(f, "{e}"),
            ServiceError::Panicked(msg) => write!(f, "analysis panicked: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.as_analysis().map(|e| e as _)
    }
}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Analysis(e)
    }
}

/// A rejected request: the error plus the analyzer's structured
/// diagnostics (machine-readable codes with the offending message/cell
/// ids) — what the JSONL wire layer forwards to clients.
#[derive(Clone, PartialEq, Debug)]
pub struct Rejection {
    /// The analysis (or internal) error.
    pub error: ServiceError,
    /// Structured diagnostics, in stage order. At least one for every
    /// analysis rejection; empty only for internal errors (panics).
    pub diagnostics: Vec<Diagnostic>,
}

impl Rejection {
    /// The underlying analysis error, if this rejection is one.
    #[must_use]
    pub fn as_analysis(&self) -> Option<&CoreError> {
        self.error.as_analysis()
    }
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.error)
    }
}

impl std::error::Error for Rejection {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// The shared outcome of one fingerprint: a certified plan or the
/// rejection (deadlocked, infeasible, model error, panic — plus its
/// diagnostics). Errors are cached too — a deadlocked program resubmitted
/// a thousand times costs one analysis.
pub type ServiceOutcome = Arc<Result<Certified, Rejection>>;

/// Whether a response was served from cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheProvenance {
    /// Served from the plan cache.
    Hit,
    /// Computed by this request (and published to the cache).
    Miss,
    /// Computed by the incremental path: a warm
    /// [`IncrementalSession`] reanalyzed an edited program, reusing the
    /// stage artifacts its dirty set left valid. Incremental outcomes are
    /// **not** published to the plan cache — their fingerprints are
    /// session-local until a client submits the edited program in full.
    Incremental,
    /// Served from a cache entry restored by a snapshot load
    /// ([`AnalysisService::import_snapshot`]) rather than computed in
    /// this process's lifetime. Entries stay `Warm` for every later hit,
    /// so warm-start coverage is observable across a whole replayed
    /// batch.
    Warm,
}

/// The service's reply to one request.
#[derive(Clone, Debug)]
pub struct AnalysisResponse {
    /// Submission sequence number (service-assigned, monotonic).
    pub seq: u64,
    /// The request's `name`, echoed.
    pub name: String,
    /// The request's 128-bit content fingerprint (the cache key).
    pub fingerprint: u128,
    /// Hit or miss.
    pub provenance: CacheProvenance,
    /// The shared analysis outcome.
    pub outcome: ServiceOutcome,
    /// Wall-clock time this request spent in a worker (for a hit: the
    /// fingerprint + cache lookup; for a miss: the full analysis).
    pub handle_micros: u64,
    /// The request's trace id: every analyzer stage span and verify span
    /// this request produced (see `--trace-file`) carries this id, and
    /// the wire layer echoes it as `trace`, so a slow response can be
    /// joined against its span tree.
    pub trace_id: u64,
}

impl AnalysisResponse {
    /// `true` if the outcome is a certified plan.
    #[must_use]
    pub fn is_certified(&self) -> bool {
        self.outcome.is_ok()
    }
}

/// A pending response, returned by [`AnalysisService::submit`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<AnalysisResponse>,
}

impl Ticket {
    /// Blocks until the worker pool answers.
    ///
    /// # Panics
    ///
    /// Panics if the service was torn down without answering (a worker
    /// panicked), which is a bug in the service.
    #[must_use]
    pub fn wait(self) -> AnalysisResponse {
        self.rx
            .recv()
            // lint: panic-ok(documented # Panics contract; a dropped reply sender is a service bug)
            .expect("service answers every accepted request")
    }
}

struct Job {
    seq: u64,
    request: AnalysisRequest,
    reply: mpsc::Sender<AnalysisResponse>,
}

struct Latencies {
    count: u64,
    sum_micros: u64,
    max_micros: u64,
    /// Reservoir of samples for percentile estimates (Algorithm R: once
    /// full, sample `n` replaces a uniformly random slot with probability
    /// `capacity / n`, so long runs stay representative of the whole run,
    /// not just the cold start).
    samples: Vec<u64>,
    /// xorshift64 state for reservoir replacement.
    rng: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            count: 0,
            sum_micros: 0,
            max_micros: 0,
            samples: Vec::new(),
            rng: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl Latencies {
    fn record(&mut self, micros: u64) {
        self.count += 1;
        self.sum_micros = self.sum_micros.saturating_add(micros);
        self.max_micros = self.max_micros.max(micros);
        if self.samples.len() < MAX_LATENCY_SAMPLES {
            self.samples.push(micros);
        } else {
            // xorshift64, then reduce onto 0..count.
            self.rng ^= self.rng << 13;
            self.rng ^= self.rng >> 7;
            self.rng ^= self.rng << 17;
            let slot = (self.rng % self.count) as usize;
            if slot < self.samples.len() {
                self.samples[slot] = micros;
            }
        }
    }
}

const MAX_LATENCY_SAMPLES: usize = 100_000;

/// Counter snapshot of the workers' verification-arena LRUs, summed
/// across all workers/verifier threads.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ArenaCacheStats {
    /// Chases served by a resident (warm) arena.
    pub hits: u64,
    /// Chases that had to build an arena.
    pub misses: u64,
    /// Arenas displaced by LRU pressure.
    pub evictions: u64,
}

impl ArenaCacheStats {
    /// Hit rate in `0.0..=1.0` (0.0 before any chases).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Registry instruments the service's hot paths touch, resolved once at
/// construction so per-request work is atomics only (no registry lock).
///
/// Arena-cache counters are deliberately **absent**: the
/// [`ArenaLru`]s themselves (inline per worker, and inside the verify
/// scheduler's workers) are the single writers of the
/// `systolic_arena_cache_*` series, so inline and scheduled chases sum in
/// the registry without double counting.
#[derive(Debug)]
struct ServiceMetrics {
    /// `systolic_service_requests_total`.
    requests: Arc<Counter>,
    /// `systolic_service_handle_duration_micros` — also the source of the
    /// [`ServiceStats`] latency percentiles.
    handle_micros: Arc<Histogram>,
    /// `systolic_service_queue_depth`, maintained by `submit`/worker pop.
    queue_depth: Arc<Gauge>,
    /// `systolic_service_coalesced_window`, set by the verify dispatcher.
    coalesced_window: Arc<Gauge>,
    /// `systolic_service_incremental_sessions`, tracking the session
    /// table's live entry count.
    incremental_sessions: Arc<Gauge>,
    /// `systolic_service_incremental_session_evictions_total`.
    session_evictions: Arc<Counter>,
    /// `systolic_service_snapshot_warm_hits_total` — the only snapshot
    /// instrument on the per-request hot path; the rest (load/save
    /// counters and durations) are resolved at their rare call sites.
    snapshot_warm_hits: Arc<Counter>,
}

impl ServiceMetrics {
    fn resolve(obs: &Obs) -> Self {
        let registry = obs.registry();
        ServiceMetrics {
            requests: registry.counter(names::SERVICE_REQUESTS),
            handle_micros: registry.histogram(names::SERVICE_HANDLE_DURATION),
            queue_depth: registry.gauge(names::SERVICE_QUEUE_DEPTH),
            coalesced_window: registry.gauge(names::SERVICE_COALESCED_WINDOW),
            incremental_sessions: registry.gauge(names::INCREMENTAL_SESSIONS),
            session_evictions: registry.counter(names::INCREMENTAL_SESSION_EVICTIONS),
            snapshot_warm_hits: registry.counter(names::SNAPSHOT_WARM_HITS),
        }
    }
}

/// Counter snapshot of the incremental edit path (the
/// `systolic_analyzer_incremental_*` registry series plus the session
/// table), for [`ServiceStats`] and the `--summary` report.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct IncrementalStats {
    /// Edit batches applied (successful applies, certified or rejected).
    pub edits: u64,
    /// Edits that reused at least one warm stage artifact.
    pub reuse_hits: u64,
    /// Edits that fell back to from-scratch analysis.
    pub fallbacks: u64,
    /// Cells dirtied across all edit batches.
    pub dirty_cells: u64,
    /// Warm sessions currently resident in the table.
    pub sessions: u64,
    /// Sessions evicted by the table's capacity bound.
    pub evictions: u64,
}

/// Verification outcomes for one topology spec — the per-topology
/// breakdown the `--summary` report shows.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TopologyVerifyStats {
    /// The topology's spec string ([`Topology::spec`]).
    pub spec: String,
    /// Chases whose replay completed (Theorem 1 held end to end).
    pub verified: u64,
    /// Chases whose replay did **not** complete (deadlocked or hit the
    /// cycle limit under the configured [`SimConfig`]).
    pub blocked: u64,
}

/// Why a verification chase failed to produce a report.
enum ChaseError {
    /// The replay's setup was rejected (cell-count mismatch).
    Model(ModelError),
    /// The replay panicked; the arena involved was dropped.
    Panicked(String),
}

/// One chase dispatched to the verify scheduler's coalescing queue.
struct VerifyJob {
    program: Program,
    plan: Arc<CommPlan>,
    compiled: Arc<CompiledTopology>,
    reply: mpsc::Sender<Result<VerifyReport, ChaseError>>,
}

/// One edit operation with names instead of ids — the shape the JSONL
/// wire layer produces. Names are resolved against the *base* session's
/// current program by [`AnalysisService::apply_edit`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NamedEditOp {
    /// Append a `W(message)`/`R(message)` op at the end of `cell`'s
    /// program.
    Append {
        /// The cell whose program grows.
        cell: String,
        /// `true` for a write, `false` for a read.
        write: bool,
        /// The message the op moves.
        message: String,
    },
    /// Remove the last operation of `cell`'s program.
    RemoveTail {
        /// The cell whose program shrinks.
        cell: String,
    },
    /// Add an undirected link (graph topologies only).
    AddLink {
        /// One endpoint.
        a: String,
        /// The other endpoint.
        b: String,
    },
    /// Remove an undirected link (graph topologies only).
    RemoveLink {
        /// One endpoint.
        a: String,
        /// The other endpoint.
        b: String,
    },
}

/// Why an `edit` request could not be applied. Unlike a [`Rejection`]
/// (the edited program analyzed and was refused), these mean the edit
/// never reached analysis — the session, if any, is unchanged.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum EditRequestError {
    /// `base` matches neither a warm session nor any recorded request
    /// fingerprint — the client must submit the full program first.
    UnknownBase {
        /// The fingerprint the client named.
        base: u128,
    },
    /// An edit op named a cell the base program does not declare.
    UnknownCellName(String),
    /// An edit op named a message the base program does not declare.
    UnknownMessageName(String),
    /// The resolved batch was rejected by [`SessionDelta`]
    /// (invalid edited program/topology, structural errors).
    ///
    /// [`SessionDelta`]: systolic_core::SessionDelta
    Edit(EditError),
}

impl std::fmt::Display for EditRequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EditRequestError::UnknownBase { base } => write!(
                f,
                "unknown base fingerprint {base:#034x}: submit the full program first"
            ),
            EditRequestError::UnknownCellName(name) => {
                write!(f, "edit references unknown cell {name:?}")
            }
            EditRequestError::UnknownMessageName(name) => {
                write!(f, "edit references unknown message {name:?}")
            }
            EditRequestError::Edit(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EditRequestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EditRequestError::Edit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EditError> for EditRequestError {
    fn from(e: EditError) -> Self {
        EditRequestError::Edit(e)
    }
}

/// The service's reply to one `edit` request: a regular
/// [`AnalysisResponse`] (provenance [`CacheProvenance::Incremental`],
/// `fingerprint` = the *edited* program's fingerprint, for chaining the
/// next edit) plus what the incremental path reused.
#[derive(Clone, Debug)]
pub struct EditResponse {
    /// The response proper, outcome and all.
    pub response: AnalysisResponse,
    /// The base fingerprint the edit was applied against.
    pub base: u128,
    /// Which stage artifacts the session reused.
    pub reuse: ReuseReport,
}

/// The request inputs recorded per fingerprint on every plan-cache miss,
/// so an `edit` naming a base whose session went cold (or never existed)
/// can seed a fresh [`IncrementalSession`] without the client resending
/// the program.
struct SeedInputs {
    program: Program,
    compiled: Arc<CompiledTopology>,
}

/// One warm incremental session, keyed in the table by its current
/// fingerprint.
struct SessionSlot {
    /// Last-edit recency for LRU eviction.
    tick: u64,
    session: IncrementalSession,
}

/// The incremental edit path's mutable state: the bounded session table
/// plus the arena LRU edit-path chases replay through (edits are
/// serialized on this one lock — interactive edit traffic is per-client
/// sequential anyway, and the table re-keys on every apply).
struct EditState {
    sessions: HashMap<u128, SessionSlot>,
    tick: u64,
    arenas: ArenaLru,
}

struct Inner {
    queue: BoundedQueue<Job>,
    cache: ShardedCache<ServiceOutcome>,
    /// `(topology, config)` fingerprint → shared compilation, so the
    /// misses of one batch (and across batches) compile each distinct
    /// topology once.
    compilations: ShardedCache<Arc<CompiledTopology>>,
    /// Chase hand-off to the verify scheduler's dispatcher; `None` when
    /// chases run inline in the analysis workers (`verify_threads == 0`).
    verify_queue: Option<BoundedQueue<VerifyJob>>,
    config: ServiceConfig,
    /// The shared observability bundle: every layer (analyzer stages,
    /// arena LRUs, verify scheduler, service counters) writes into this
    /// one registry/tracer pair.
    obs: Arc<Obs>,
    metrics: ServiceMetrics,
    latencies: Mutex<Latencies>,
    /// The [`VerifyScheduler`]'s cumulative counters, snapshotted by the
    /// dispatcher after every fan-out. `None` until the first fan-out (or
    /// always, when chases run inline).
    scheduler_stats: Mutex<Option<SchedulerStats>>,
    /// Topology spec → (verified, blocked) chase tallies, for the
    /// per-topology summary breakdown. `BTreeMap` so reports render in a
    /// stable order.
    verify_by_topology: Mutex<BTreeMap<String, (u64, u64)>>,
    /// Request inputs per fingerprint (bounded like the plan cache), the
    /// seed source for cold `edit` bases.
    seeds: ShardedCache<Arc<SeedInputs>>,
    /// The incremental edit path: session table + edit-chase arenas.
    edit_state: Mutex<EditState>,
    /// Fingerprints installed by a snapshot load; hits on these report
    /// [`CacheProvenance::Warm`]. Guarded by `warm_active` so the common
    /// never-loaded service pays one relaxed atomic read per hit, not a
    /// lock.
    warm: Mutex<std::collections::HashSet<u128>>,
    /// `true` once any snapshot import installed at least one entry.
    warm_active: std::sync::atomic::AtomicBool,
    /// Cumulative snapshot activity, reported by [`ServiceStats`].
    snapshot_tally: Mutex<SnapshotStats>,
}

impl Inner {
    fn tally_chase(&self, topology: &Topology, report: &VerifyReport) {
        let spec = topology.spec();
        let outcome = if report.completed { "ok" } else { "blocked" };
        // Per-chase registry lookup is fine here: tally_chase already
        // serializes on the verify_by_topology mutex.
        self.obs
            .registry()
            .counter_with(
                names::VERIFY_OUTCOMES,
                &[("topology", &spec), ("outcome", outcome)],
            )
            .inc();
        let mut tallies = self.verify_by_topology.lock();
        let entry = tallies.entry(spec).or_insert((0, 0));
        if report.completed {
            entry.0 += 1;
        } else {
            entry.1 += 1;
        }
    }
}

/// Cumulative snapshot-persistence counters, for [`ServiceStats`] and the
/// `--summary` report. All-zero until the service loads or saves a
/// snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SnapshotStats {
    /// Snapshot imports that fully parsed and installed.
    pub loads: u64,
    /// Cached plan outcomes restored across all loads.
    pub loaded_plans: u64,
    /// Incremental seed inputs restored across all loads.
    pub loaded_seeds: u64,
    /// Entries dropped during loads (config-skewed, re-fingerprint
    /// mismatches, plans without a surviving seed) — the loads themselves
    /// still succeeded.
    pub dropped: u64,
    /// Whole snapshot loads rejected (corrupt, truncated, or
    /// version-skewed files); nothing was installed and the service kept
    /// serving cold.
    pub load_rejected: u64,
    /// Snapshots written.
    pub saves: u64,
    /// Bytes in the most recently written snapshot.
    pub last_save_bytes: u64,
    /// Cache hits served from snapshot-warmed entries
    /// ([`CacheProvenance::Warm`]).
    pub warm_hits: u64,
}

/// What one snapshot operation ([`AnalysisService::import_snapshot`] /
/// [`AnalysisService::save_snapshot`] and their file wrappers) did, for
/// the wire `snapshot` response and the daemon's summary lines.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SnapshotReport {
    /// Plan outcomes restored (load) or serialized (save).
    pub plans: u64,
    /// Seed inputs restored (load) or serialized (save).
    pub seeds: u64,
    /// Entries dropped by this operation (load-side skew; zero on save).
    pub dropped: u64,
    /// Snapshot size in bytes.
    pub bytes: u64,
    /// Wall time of the operation, microseconds.
    pub micros: u64,
}

/// Aggregate service statistics (request latencies + cache counters).
///
/// Latency percentiles come from the lock-free log2-bucket
/// `systolic_service_handle_duration_micros` histogram: an estimate is
/// the inclusive upper bound of the bucket holding the ranked sample
/// (capped by the exact max), so it **overestimates by less than 2× (one
/// octave) and never underestimates**. Mean, count, and max are exact.
/// (The old reservoir sampler still records and is kept as a cross-check
/// in tests.)
#[derive(Clone, Debug)]
pub struct ServiceStats {
    /// Requests answered.
    pub requests: u64,
    /// Mean in-worker handling time, microseconds.
    pub mean_micros: f64,
    /// Median handling time, microseconds (histogram estimate, < 2×
    /// overestimate, never an underestimate).
    pub p50_micros: f64,
    /// 99th-percentile handling time, microseconds (histogram estimate,
    /// < 2× overestimate, never an underestimate).
    pub p99_micros: f64,
    /// Worst handling time, microseconds.
    pub max_micros: u64,
    /// Plan-cache counters.
    pub cache: CacheStats,
    /// Verification-arena LRU counters, summed across all chasing threads
    /// (inline workers and scheduler workers alike).
    pub arena_cache: ArenaCacheStats,
    /// The arena residency budget every chasing thread's LRU enforces.
    pub arena_budget: ArenaBudget,
    /// The verify scheduler's cumulative fan-out counters; `None` until
    /// the scheduler has fanned out at least once (in particular, always
    /// `None` when chases run inline, `verify_threads == 0`).
    pub scheduler: Option<SchedulerStats>,
    /// Per-topology verification outcomes (spec order), populated when
    /// the service chases plans (`verify` on).
    pub verify_topologies: Vec<TopologyVerifyStats>,
    /// Incremental edit-path counters (all-zero until the first `edit`).
    pub incremental: IncrementalStats,
    /// Snapshot persistence counters (all-zero until the first snapshot
    /// load or save).
    pub snapshot: SnapshotStats,
}

/// Renders an [`ArenaBudget`] for the summary table.
fn budget_label(budget: ArenaBudget) -> String {
    match budget {
        ArenaBudget::Fixed(n) => format!("{n} arenas/thread"),
        ArenaBudget::Auto => "auto (observed topologies)".to_owned(),
        ArenaBudget::MemBytes(bytes) => format!("{bytes} bytes/thread"),
    }
}

impl ServiceStats {
    /// Renders the stats as a two-column report table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(["metric", "value"]);
        t.row(["requests", &self.requests.to_string()]);
        t.row(["cache hits", &self.cache.hits.to_string()]);
        t.row(["cache misses", &self.cache.misses.to_string()]);
        t.row(["cache evictions", &self.cache.evictions.to_string()]);
        t.row(["cache entries", &self.cache.entries.to_string()]);
        t.row([
            "hit rate",
            &format!("{:.1}%", self.cache.hit_rate() * 100.0),
        ]);
        t.row(["latency mean (us)", &format!("{:.1}", self.mean_micros)]);
        t.row(["latency p50 (us)", &format!("{:.1}", self.p50_micros)]);
        t.row(["latency p99 (us)", &format!("{:.1}", self.p99_micros)]);
        t.row(["latency max (us)", &self.max_micros.to_string()]);
        let arenas = self.arena_cache;
        if arenas.hits + arenas.misses > 0 {
            t.row(["arena cache hits", &arenas.hits.to_string()]);
            t.row(["arena cache misses", &arenas.misses.to_string()]);
            t.row(["arena cache evictions", &arenas.evictions.to_string()]);
            t.row([
                "arena hit rate",
                &format!("{:.1}%", arenas.hit_rate() * 100.0),
            ]);
            t.row(["arena cache budget", &budget_label(self.arena_budget)]);
        }
        if let Some(scheduler) = &self.scheduler {
            t.row(["scheduler fan-outs", &scheduler.fanouts.to_string()]);
            t.row(["scheduler coalesced jobs", &scheduler.items.to_string()]);
            t.row([
                "scheduler queue depth (max)",
                &scheduler.max_fanout.to_string(),
            ]);
            t.row([
                "scheduler distinct topologies",
                &scheduler.distinct_topologies.to_string(),
            ]);
            for (spec, fanout) in &scheduler.per_topology {
                t.row([
                    &format!("fanout[{spec}]"),
                    &format!("{} jobs / {} fan-outs", fanout.items, fanout.fanouts),
                ]);
            }
        }
        for topology in &self.verify_topologies {
            t.row([
                &format!("verify[{}]", topology.spec),
                &format!("{} ok / {} blocked", topology.verified, topology.blocked),
            ]);
        }
        let inc = self.incremental;
        if inc.edits > 0 {
            t.row(["incremental edits", &inc.edits.to_string()]);
            t.row(["incremental reuse hits", &inc.reuse_hits.to_string()]);
            t.row(["incremental fallbacks", &inc.fallbacks.to_string()]);
            t.row(["incremental dirty cells", &inc.dirty_cells.to_string()]);
            t.row(["incremental sessions", &inc.sessions.to_string()]);
            t.row(["incremental session evictions", &inc.evictions.to_string()]);
        }
        let snap = self.snapshot;
        if snap.loads + snap.saves + snap.load_rejected > 0 {
            t.row(["snapshot loads", &snap.loads.to_string()]);
            t.row(["snapshot plans restored", &snap.loaded_plans.to_string()]);
            t.row(["snapshot seeds restored", &snap.loaded_seeds.to_string()]);
            t.row(["snapshot entries dropped", &snap.dropped.to_string()]);
            t.row(["snapshot loads rejected", &snap.load_rejected.to_string()]);
            t.row(["snapshot saves", &snap.saves.to_string()]);
            t.row([
                "snapshot last save bytes",
                &snap.last_save_bytes.to_string(),
            ]);
            t.row(["snapshot warm hits", &snap.warm_hits.to_string()]);
        }
        t
    }
}

/// The sharded, cached, batch analysis service.
///
/// # Examples
///
/// ```
/// use systolic_service::{AnalysisRequest, AnalysisService, CacheProvenance, ServiceConfig};
/// use systolic_workloads::{fig7, fig7_topology};
///
/// let service = AnalysisService::new(ServiceConfig::default());
/// let request = AnalysisRequest::new("fig7", fig7(3), fig7_topology());
///
/// let first = service.submit(request.clone()).wait();
/// assert_eq!(first.provenance, CacheProvenance::Miss);
/// assert!(first.is_certified());
///
/// let second = service.submit(request).wait();
/// assert_eq!(second.provenance, CacheProvenance::Hit);
/// assert_eq!(second.fingerprint, first.fingerprint);
/// ```
#[derive(Debug)]
pub struct AnalysisService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    /// The verify scheduler's dispatcher thread (empty when chases run
    /// inline in the analysis workers).
    verifiers: Vec<JoinHandle<()>>,
    seq: AtomicU64,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("queue", &self.queue)
            .finish_non_exhaustive()
    }
}

impl AnalysisService {
    /// Starts the worker pool (and, when `verify_threads ≥ 1` with
    /// `verify` on, the dedicated verifier pool) with a fresh private
    /// observability bundle. Use [`AnalysisService::with_obs`] to share
    /// one bundle with other components (or to read it back out).
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        Self::with_obs(config, Arc::new(Obs::new()))
    }

    /// Starts the worker pool recording metrics and spans into `obs`.
    #[must_use]
    pub fn with_obs(config: ServiceConfig, obs: Arc<Obs>) -> Self {
        let verify_threads = if config.verify {
            config.verify_threads
        } else {
            0
        };
        let metrics = ServiceMetrics::resolve(&obs);
        let hw_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        obs.registry()
            .gauge(names::HW_THREADS)
            .set(i64::try_from(hw_threads).unwrap_or(i64::MAX));
        // The edit path's chase arenas, shared across all sessions (edits
        // are serialized, so one LRU covers them all).
        let mut edit_arenas = ArenaLru::with_budget(config.arena_budget());
        edit_arenas.set_obs(&obs);
        let inner = Arc::new(Inner {
            queue: BoundedQueue::new(config.queue_depth),
            cache: ShardedCache::new(config.cache),
            compilations: ShardedCache::new(config.compilation_cache),
            // Deeper than the fan-out so chases pile up into a coalescing
            // window while the previous fan-out runs, without letting
            // analysis workers race unboundedly ahead of verification.
            verify_queue: (verify_threads > 0)
                .then(|| BoundedQueue::new(verify_window(verify_threads))),
            config,
            obs,
            metrics,
            latencies: Mutex::new(Latencies::default()),
            scheduler_stats: Mutex::new(None),
            verify_by_topology: Mutex::new(BTreeMap::new()),
            seeds: ShardedCache::new(config.cache),
            edit_state: Mutex::new(EditState {
                sessions: HashMap::new(),
                tick: 0,
                arenas: edit_arenas,
            }),
            warm: Mutex::new(std::collections::HashSet::new()),
            warm_active: std::sync::atomic::AtomicBool::new(false),
            snapshot_tally: Mutex::new(SnapshotStats::default()),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("systolic-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    // lint: panic-ok(startup-time spawn; failing to build the pool is fatal by design)
                    .expect("spawning a worker thread succeeds")
            })
            .collect();
        // One dispatcher owns the scheduler; the scheduler itself fans
        // each coalesced window out over `verify_threads` workers.
        let verifiers = (verify_threads > 0)
            .then(|| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name("systolic-verify-scheduler".to_owned())
                    .spawn(move || scheduler_loop(&inner))
                    // lint: panic-ok(startup-time spawn; failing to build the pool is fatal by design)
                    .expect("spawning the verify dispatcher succeeds")
            })
            .into_iter()
            .collect();
        AnalysisService {
            inner,
            workers,
            verifiers,
            seq: AtomicU64::new(0),
        }
    }

    /// Submits one request, blocking while the submission queue is full
    /// (backpressure). The returned [`Ticket`] resolves to the response.
    ///
    /// # Panics
    ///
    /// Panics if called after the service started shutting down (only
    /// possible during `Drop`, where no caller can hold `&self`).
    #[must_use]
    pub fn submit(&self, request: AnalysisRequest) -> Ticket {
        // lint: relaxed-ok(sequence allocation; fetch_add atomicity alone guarantees uniqueness)
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        self.inner
            .queue
            .push(Job {
                seq,
                request,
                reply: tx,
            })
            // lint: panic-ok(documented # Panics contract; queue closes only during Drop)
            .unwrap_or_else(|_| panic!("submission queue closed while service alive"));
        // Gauge via inc/dec (worker pop decrements) rather than len():
        // the queue's own lock stays out of the submission path.
        self.inner.metrics.queue_depth.add(1);
        Ticket { rx }
    }

    /// Submits a whole batch and waits for every response, preserving
    /// request order. Submission is paced by the bounded queue, so a huge
    /// batch never balloons the queue beyond `queue_depth`.
    #[must_use]
    pub fn run_batch(&self, requests: Vec<AnalysisRequest>) -> Vec<AnalysisResponse> {
        let tickets: Vec<Ticket> = requests.into_iter().map(|r| self.submit(r)).collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// Applies an edit batch against `base` — the fingerprint of a
    /// previously served request or edit — through the incremental path:
    /// the warm [`IncrementalSession`] for `base` (seeded from the
    /// recorded request inputs when cold) reanalyzes the edited program
    /// reusing every stage artifact its dirty set left valid, and the
    /// session is re-keyed under the *edited* fingerprint so the next
    /// edit can chain on the returned [`AnalysisResponse::fingerprint`].
    ///
    /// The outcome (certified or rejected, with the same diagnostics a
    /// full submission of the edited program would carry) commits the
    /// edited program as the session's new base either way; with
    /// `verify` on, certified edits are chased exactly like misses.
    /// Incremental outcomes are **not** published to the plan cache.
    ///
    /// # Errors
    ///
    /// [`EditRequestError`] when the base is unknown, a name fails to
    /// resolve, or the batch itself is invalid ([`EditError`]); the
    /// session (if any) is unchanged.
    pub fn apply_edit(
        &self,
        name: impl Into<String>,
        base: u128,
        ops: &[NamedEditOp],
    ) -> Result<EditResponse, EditRequestError> {
        let start = Instant::now();
        // lint: relaxed-ok(sequence allocation; fetch_add atomicity alone guarantees uniqueness)
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let inner = &self.inner;
        let tracer = inner.obs.tracer();
        let span = tracer.start(tracer.new_trace(), None, "request");
        let ctx = span.ctx();
        let trace_id = ctx.trace.0;

        let mut state = inner.edit_state.lock();
        let mut session = match state.sessions.remove(&base) {
            Some(slot) => slot.session,
            None => {
                // Cold base: seed a fresh session from the recorded
                // request inputs (full-analysis cost, once).
                let Some(seed) = inner.seeds.get(base) else {
                    tracer.finish(span);
                    return Err(EditRequestError::UnknownBase { base });
                };
                let analyzer =
                    Analyzer::new(Arc::clone(&seed.compiled)).with_obs(Arc::clone(&inner.obs));
                IncrementalSession::seed(
                    analyzer,
                    seed.program.clone(),
                    IncrementalConfig {
                        fallback_ratio: inner.config.incremental_fallback_ratio,
                    },
                )
            }
        };
        let resolved = match resolve_ops(session.program(), ops) {
            Ok(resolved) => resolved,
            Err(error) => {
                store_session(inner, &mut state, base, session);
                tracer.finish(span);
                return Err(error);
            }
        };
        let reuse = match session.apply_in(&resolved, Some(ctx)) {
            Ok(reuse) => reuse,
            Err(error) => {
                store_session(inner, &mut state, base, session);
                tracer.finish(span);
                return Err(EditRequestError::Edit(error));
            }
        };
        let fingerprint = session.fingerprint();
        let diagnostics: Vec<Diagnostic> = session.diagnostics().clone().into_iter().collect();
        let outcome: Result<Certified, Rejection> = match session.outcome().result() {
            Ok(analysis) => {
                let labeling_method = analysis.labeling_method();
                let plan = Arc::new(analysis.plan().clone());
                let program = session.program();
                let message_labels = program
                    .message_ids()
                    .map(|m| (program.message(m).name().to_owned(), plan.label(m)))
                    .collect();
                // Chase certified edits exactly like misses (inline
                // through the edit path's own arenas, or the verifier
                // pool), with the same rejection semantics.
                let chased = if inner.config.verify {
                    let compiled = Arc::clone(session.analyzer().compiled());
                    let chase_span = tracer.start(ctx.trace, Some(ctx.parent), "verify");
                    let chased = chase(inner, &mut state.arenas, &compiled, program, &plan);
                    tracer.finish(chase_span);
                    chased.map(|report| {
                        inner.tally_chase(compiled.topology(), &report);
                        Some(report)
                    })
                } else {
                    Ok(None)
                };
                match chased {
                    Ok(verified) => Ok(Certified {
                        max_queues_per_interval: plan.requirements().max_per_interval(),
                        plan,
                        labeling_method,
                        message_labels,
                        verified,
                        analysis_micros: u64::try_from(start.elapsed().as_micros())
                            .unwrap_or(u64::MAX),
                        diagnostics,
                    }),
                    Err(ChaseError::Model(error)) => Err(Rejection {
                        error: ServiceError::Analysis(CoreError::Model(error)),
                        diagnostics,
                    }),
                    Err(ChaseError::Panicked(message)) => Err(Rejection {
                        error: ServiceError::Panicked(message),
                        diagnostics: Vec::new(),
                    }),
                }
            }
            Err(error) => Err(Rejection {
                error: ServiceError::Analysis(error.clone()),
                diagnostics,
            }),
        };
        store_session(inner, &mut state, fingerprint, session);
        drop(state);
        tracer.finish(span);
        let handle_micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        Ok(EditResponse {
            response: AnalysisResponse {
                seq,
                name: name.into(),
                fingerprint,
                provenance: CacheProvenance::Incremental,
                outcome: Arc::new(outcome),
                handle_micros,
                trace_id,
            },
            base,
            reuse,
        })
    }

    /// Counter snapshot of the plan cache.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// Per-shard counter snapshots of the plan cache.
    #[must_use]
    pub fn per_shard_cache_stats(&self) -> Vec<CacheStats> {
        self.inner.cache.per_shard_stats()
    }

    /// Entries currently resident in the plan cache.
    #[must_use]
    pub fn cache_entries(&self) -> usize {
        self.inner.cache.len()
    }

    /// Counter snapshot of the topology-compilation cache (one entry per
    /// distinct `(topology, config)` pair analyzed on a miss).
    #[must_use]
    pub fn compilation_cache_stats(&self) -> CacheStats {
        self.inner.compilations.stats()
    }

    /// The service's observability bundle: the registry every layer
    /// writes into and the tracer holding finished spans. Share it via
    /// [`AnalysisService::with_obs`] or read it here for export
    /// (`--metrics-file` / `--trace-file`).
    #[must_use]
    pub fn obs(&self) -> &Arc<Obs> {
        &self.inner.obs
    }

    /// An owned snapshot of the metrics registry, with the plan-cache
    /// counters mirrored into the `systolic_plan_cache_*` export gauges
    /// first — the one-stop input for `--metrics-file` and the `metrics`
    /// wire op.
    #[must_use]
    pub fn registry_snapshot(&self) -> RegistrySnapshot {
        let cache = self.inner.cache.stats();
        let clamp = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        let registry = self.inner.obs.registry();
        registry
            .gauge(names::PLAN_CACHE_HITS)
            .set(clamp(cache.hits));
        registry
            .gauge(names::PLAN_CACHE_MISSES)
            .set(clamp(cache.misses));
        registry
            .gauge(names::PLAN_CACHE_EVICTIONS)
            .set(clamp(cache.evictions));
        let routes = self.route_cache_stats();
        registry
            .gauge(names::ROUTE_CACHE_HITS)
            .set(clamp(routes.hits));
        registry
            .gauge(names::ROUTE_CACHE_MISSES)
            .set(clamp(routes.misses));
        registry.snapshot()
    }

    /// Per-pair route LRU counters summed across every compiled topology
    /// the service holds — the compilation cache plus any live
    /// incremental-session analyzers. Distinct `CompiledTopology`
    /// instances are deduplicated by identity (a session seeded from the
    /// compilation cache shares its compiled topology, and must not be
    /// counted twice). All-zero unless some topology exceeded the
    /// [`systolic_core::MAX_CLOSURE_CELLS`] route-closure limit.
    #[must_use]
    pub fn route_cache_stats(&self) -> RouteCacheStats {
        let mut total = RouteCacheStats::default();
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut add = |compiled: &Arc<CompiledTopology>| {
            if seen.insert(Arc::as_ptr(compiled) as usize) {
                let stats = compiled.route_cache_stats();
                total.hits += stats.hits;
                total.misses += stats.misses;
                total.entries += stats.entries;
            }
        };
        for compiled in self.inner.compilations.values() {
            add(&compiled);
        }
        let state = self.inner.edit_state.lock();
        for slot in state.sessions.values() {
            add(slot.session.analyzer().compiled());
        }
        total
    }

    /// Counter snapshot of the incremental edit path: the
    /// `systolic_analyzer_incremental_*` registry series plus the live
    /// session-table occupancy. All-zero until the first
    /// [`AnalysisService::apply_edit`].
    #[must_use]
    pub fn incremental_stats(&self) -> IncrementalStats {
        let snapshot = self.inner.obs.registry().snapshot();
        IncrementalStats {
            edits: snapshot.counter_total(names::INCREMENTAL_EDITS),
            reuse_hits: snapshot.counter_total(names::INCREMENTAL_HITS),
            fallbacks: snapshot.counter_total(names::INCREMENTAL_FALLBACKS),
            dirty_cells: snapshot.counter_total(names::INCREMENTAL_DIRTY_CELLS),
            sessions: self.inner.edit_state.lock().sessions.len() as u64,
            evictions: snapshot.counter_total(names::INCREMENTAL_SESSION_EVICTIONS),
        }
    }

    /// Counter snapshot of the verification-arena LRUs, summed across all
    /// chasing threads — the workers' inline LRUs plus the verify
    /// scheduler's per-worker LRUs. All-zero unless the service chases
    /// plans (`verify` on).
    #[must_use]
    pub fn arena_cache_stats(&self) -> ArenaCacheStats {
        // The ArenaLrus are the single writers of these series (inline
        // workers and scheduler workers share the one registry), so the
        // registry totals already cover both chase routes without double
        // counting.
        let snapshot = self.inner.obs.registry().snapshot();
        ArenaCacheStats {
            hits: snapshot.counter_total(names::ARENA_CACHE_HITS),
            misses: snapshot.counter_total(names::ARENA_CACHE_MISSES),
            evictions: snapshot.counter_total(names::ARENA_CACHE_EVICTIONS),
        }
    }

    /// The verify scheduler's cumulative fan-out counters, as of its most
    /// recent fan-out. `None` when chases run inline
    /// (`verify_threads == 0`) or before the first fan-out.
    #[must_use]
    pub fn scheduler_stats(&self) -> Option<SchedulerStats> {
        self.inner.scheduler_stats.lock().clone()
    }

    /// Per-topology verification outcomes so far, in spec order. Empty
    /// unless the service chases plans (`verify` on).
    #[must_use]
    pub fn verify_topology_stats(&self) -> Vec<TopologyVerifyStats> {
        self.inner
            .verify_by_topology
            .lock()
            .iter()
            .map(|(spec, &(verified, blocked))| TopologyVerifyStats {
                spec: spec.clone(),
                verified,
                blocked,
            })
            .collect()
    }

    /// Aggregate latency + cache statistics. Percentiles are log2-bucket
    /// histogram estimates (< 2× overestimate, never an underestimate —
    /// see [`ServiceStats`]); count, mean, and max are exact.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        // Three atomic-array reads — no lock, no sort, regardless of how
        // many requests have been served.
        let latency = self.inner.metrics.handle_micros.snapshot();
        ServiceStats {
            requests: latency.count,
            mean_micros: latency.mean(),
            p50_micros: latency.quantile(0.5) as f64,
            p99_micros: latency.quantile(0.99) as f64,
            max_micros: latency.max,
            cache: self.inner.cache.stats(),
            arena_cache: self.arena_cache_stats(),
            arena_budget: self.inner.config.arena_budget(),
            scheduler: self.scheduler_stats(),
            verify_topologies: self.verify_topology_stats(),
            incremental: self.incremental_stats(),
            snapshot: self.snapshot_stats(),
        }
    }

    /// Cumulative snapshot-persistence counters (all-zero until the first
    /// snapshot load or save).
    #[must_use]
    pub fn snapshot_stats(&self) -> SnapshotStats {
        let mut stats = *self.inner.snapshot_tally.lock();
        stats.warm_hits = self.inner.metrics.snapshot_warm_hits.get();
        stats
    }

    /// Stages the current warm state — every cached plan outcome plus the
    /// recorded seed inputs — for serialization. Plans whose seed entry
    /// was independently evicted carry no reconstructable request inputs
    /// and are skipped (counted under `systolic_service_snapshot_dropped_total`,
    /// reason `export-missing-seed`).
    fn export_snapshot_data(&self) -> snapshot::SnapshotData {
        let mut config_hashes: HashMap<u128, u128> = HashMap::new();
        let mut seeds = Vec::new();
        for (fingerprint, seed) in self.inner.seeds.entries() {
            let config = seed.compiled.config().clone();
            config_hashes.insert(fingerprint, config.content_hash());
            seeds.push(snapshot::SeedEntry {
                fingerprint,
                program: seed.program.clone(),
                topology: seed.compiled.topology().clone(),
                config,
            });
        }
        let mut plans = Vec::new();
        let mut skipped = 0u64;
        for (fingerprint, outcome) in self.inner.cache.entries() {
            match config_hashes.get(&fingerprint) {
                Some(&config_hash) => plans.push(snapshot::PlanEntry {
                    fingerprint,
                    config_hash,
                    outcome,
                }),
                None => skipped += 1,
            }
        }
        if skipped > 0 {
            self.inner
                .obs
                .registry()
                .counter_with(
                    names::SNAPSHOT_DROPPED,
                    &[("reason", "export-missing-seed")],
                )
                .add(skipped);
        }
        snapshot::SnapshotData { plans, seeds }
    }

    /// Serializes the service's warm state into the versioned snapshot
    /// container (see the `snapshot` module docs for the format layout).
    #[must_use]
    pub fn export_snapshot(&self) -> Vec<u8> {
        snapshot::write_snapshot(&self.export_snapshot_data())
    }

    /// Parses `bytes` as a snapshot and installs its entries into the
    /// plan and seed caches.
    ///
    /// The whole file is decoded and validated *before* anything is
    /// installed: a corrupt, truncated, or version-skewed snapshot
    /// returns a typed [`SnapshotError`], installs nothing, and leaves
    /// the service serving cold. Per-entry skew — a seed that no longer
    /// re-fingerprints to its recorded key, a plan whose config hash
    /// mismatches its seed's, or a plan whose fingerprint is already
    /// cached — is dropped and counted, never an error.
    pub fn import_snapshot(&self, bytes: &[u8]) -> Result<SnapshotReport, SnapshotError> {
        let start = Instant::now();
        let registry = self.inner.obs.registry();
        let data = match snapshot::read_snapshot(bytes) {
            Ok(data) => data,
            Err(error) => {
                registry.counter(names::SNAPSHOT_LOAD_REJECTED).inc();
                self.inner.snapshot_tally.lock().load_rejected += 1;
                return Err(error);
            }
        };
        let mut dropped = [
            ("refingerprint", 0u64),
            ("config-skew", 0u64),
            ("missing-seed", 0u64),
            ("already-cached", 0u64),
        ];
        let mut config_hashes: HashMap<u128, u128> = HashMap::new();
        let mut loaded_seeds = 0u64;
        for seed in data.seeds {
            // A seed that no longer fingerprints to its recorded key was
            // written by an incompatible build (or corrupted in a way the
            // section hash cannot see); installing it would seed wrong
            // sessions, so drop it.
            let recomputed = request_fingerprint(&seed.program, &seed.topology, &seed.config);
            if recomputed != seed.fingerprint {
                dropped[0].1 += 1;
                continue;
            }
            let key = CompiledTopology::fingerprint_of(&seed.topology, &seed.config);
            let compiled = match self.inner.compilations.get(key) {
                Some(compiled) => compiled,
                None => {
                    let built =
                        CompiledTopology::compile(&seed.topology, &seed.config).into_shared();
                    self.inner.compilations.insert(key, built).0
                }
            };
            config_hashes.insert(seed.fingerprint, seed.config.content_hash());
            let _ = self.inner.seeds.insert(
                seed.fingerprint,
                Arc::new(SeedInputs {
                    program: seed.program,
                    compiled,
                }),
            );
            loaded_seeds += 1;
        }
        let mut loaded_plans = 0u64;
        {
            let mut warm = self.inner.warm.lock();
            for plan in data.plans {
                match config_hashes.get(&plan.fingerprint) {
                    Some(&hash) if hash == plan.config_hash => {
                        // First writer wins: an outcome this process
                        // already computed beats the snapshot's copy, and
                        // its hits keep reporting plain `Hit`.
                        let (_, installed) =
                            self.inner.cache.insert(plan.fingerprint, plan.outcome);
                        if installed {
                            warm.insert(plan.fingerprint);
                            loaded_plans += 1;
                        } else {
                            dropped[3].1 += 1;
                        }
                    }
                    Some(_) => dropped[1].1 += 1,
                    None => dropped[2].1 += 1,
                }
            }
        }
        if loaded_plans > 0 {
            self.inner
                .warm_active
                // lint: relaxed-ok(one-way flag; the warm set itself is published under its lock)
                .store(true, std::sync::atomic::Ordering::Relaxed);
        }
        let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        registry
            .counter(names::SNAPSHOT_LOADED_PLANS)
            .add(loaded_plans);
        registry
            .counter(names::SNAPSHOT_LOADED_SEEDS)
            .add(loaded_seeds);
        let mut total_dropped = 0u64;
        for (reason, count) in dropped {
            if count > 0 {
                registry
                    .counter_with(names::SNAPSHOT_DROPPED, &[("reason", reason)])
                    .add(count);
                total_dropped += count;
            }
        }
        registry
            .histogram(names::SNAPSHOT_LOAD_DURATION)
            .record(micros);
        {
            let mut tally = self.inner.snapshot_tally.lock();
            tally.loads += 1;
            tally.loaded_plans += loaded_plans;
            tally.loaded_seeds += loaded_seeds;
            tally.dropped += total_dropped;
        }
        Ok(SnapshotReport {
            plans: loaded_plans,
            seeds: loaded_seeds,
            dropped: total_dropped,
            bytes: bytes.len() as u64,
            micros,
        })
    }

    /// Serializes the warm state and writes it to `path` (see
    /// [`AnalysisService::export_snapshot`]).
    pub fn save_snapshot(&self, path: &std::path::Path) -> Result<SnapshotReport, SnapshotError> {
        let start = Instant::now();
        let data = self.export_snapshot_data();
        let plans = data.plans.len() as u64;
        let seeds = data.seeds.len() as u64;
        let bytes = snapshot::write_snapshot(&data);
        std::fs::write(path, &bytes)?;
        let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let registry = self.inner.obs.registry();
        registry.counter(names::SNAPSHOT_SAVES).inc();
        registry
            .gauge(names::SNAPSHOT_SAVE_BYTES)
            .set(i64::try_from(bytes.len()).unwrap_or(i64::MAX));
        registry
            .histogram(names::SNAPSHOT_SAVE_DURATION)
            .record(micros);
        {
            let mut tally = self.inner.snapshot_tally.lock();
            tally.saves += 1;
            tally.last_save_bytes = bytes.len() as u64;
        }
        Ok(SnapshotReport {
            plans,
            seeds,
            dropped: 0,
            bytes: bytes.len() as u64,
            micros,
        })
    }

    /// Reads `path` and installs its snapshot (see
    /// [`AnalysisService::import_snapshot`]). An unreadable file counts
    /// as a rejected load; the service keeps serving cold.
    pub fn load_snapshot(&self, path: &std::path::Path) -> Result<SnapshotReport, SnapshotError> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(error) => {
                self.inner
                    .obs
                    .registry()
                    .counter(names::SNAPSHOT_LOAD_REJECTED)
                    .inc();
                self.inner.snapshot_tally.lock().load_rejected += 1;
                return Err(SnapshotError::Io(error));
            }
        };
        self.import_snapshot(&bytes)
    }
}

impl Drop for AnalysisService {
    fn drop(&mut self) {
        // Workers first (they may still be waiting on verifier replies),
        // then the verifier pool once no chase can arrive anymore.
        self.inner.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(verify_queue) = &self.inner.verify_queue {
            verify_queue.close();
        }
        for verifier in self.verifiers.drain(..) {
            let _ = verifier.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    // The worker's verification arenas: a small LRU keyed by compiled
    // topology, so topology-interleaved traffic reuses warm arenas
    // instead of rebuilding per request. Unused (stays empty) when
    // chases are offloaded to the verify scheduler.
    let mut arenas = ArenaLru::with_budget(inner.config.arena_budget());
    // The LRU itself writes the arena-cache registry series (hits,
    // misses, evictions, build timings) — the service adds nothing on
    // top, so inline and scheduled chases sum without double counting.
    arenas.set_obs(&inner.obs);
    while let Some(job) = inner.queue.pop() {
        inner.metrics.queue_depth.add(-1);
        let response = handle(inner, job.seq, job.request, &mut arenas);
        // A dropped Ticket just means the client stopped listening.
        let _ = job.reply.send(response);
    }
}

/// The coalescing window (and verify-queue depth) for `threads` scheduler
/// workers: enough room that every worker can draw several plans per
/// fan-out even when analysis outpaces verification.
fn verify_window(threads: usize) -> usize {
    (threads * 4).max(8)
}

/// The verify dispatcher: drains the chase queue in coalesced windows and
/// fans each heterogeneous window out through the cross-topology
/// [`VerifyScheduler`] — one fan-out for however many chases (mixed
/// topologies included) queued up while the previous window ran. Replay
/// panics poison at most one arena ([`VerifyTaskError::Panicked`] per
/// item), so the scheduler and its warm arenas outlive hostile requests.
fn scheduler_loop(inner: &Inner) {
    let Some(verify_queue) = &inner.verify_queue else {
        return;
    };
    let threads = inner.config.verify_threads.max(1);
    let window = verify_window(threads);
    let mut scheduler =
        VerifyScheduler::new(inner.config.sim, threads, inner.config.arena_budget());
    // Scheduler workers' LRUs and fan-out counters write into the same
    // registry as the inline path.
    scheduler.set_obs(Arc::clone(&inner.obs));
    loop {
        let jobs = verify_queue.pop_many(window);
        if jobs.is_empty() {
            return; // closed and drained
        }
        inner
            .metrics
            .coalesced_window
            .set(i64::try_from(jobs.len()).unwrap_or(i64::MAX));
        let outcomes = scheduler.verify_batch_outcomes(
            jobs.iter()
                .map(|job| (&job.program, &job.compiled, &job.plan)),
        );
        *inner.scheduler_stats.lock() = Some(scheduler.stats().clone());
        for (job, outcome) in jobs.into_iter().zip(outcomes) {
            let result = outcome.map_err(|error| match error {
                VerifyTaskError::Model(error) => ChaseError::Model(error),
                VerifyTaskError::Panicked(message) => ChaseError::Panicked(message),
            });
            // A dropped reply means the requesting worker is gone
            // (shutdown).
            let _ = job.reply.send(result);
        }
    }
}

/// Replays `plan` through `arenas`' warm arena for `compiled` (building
/// one on a miss), with panic isolation: a replay panic drops the
/// possibly-poisoned arena and reports [`ChaseError::Panicked`] instead
/// of unwinding the calling thread.
fn chase_through(
    inner: &Inner,
    arenas: &mut ArenaLru,
    compiled: &Arc<CompiledTopology>,
    program: &Program,
    plan: &Arc<CommPlan>,
) -> Result<VerifyReport, ChaseError> {
    let fingerprint = compiled.fingerprint();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // The LRU counts its own hit/miss/eviction into the registry.
        let lookup = arenas.get_or_build(compiled, inner.config.sim);
        lookup.arena.verify(program, plan)
    }));
    match result {
        Ok(Ok(report)) => Ok(report),
        Ok(Err(error)) => Err(ChaseError::Model(error)),
        Err(panic) => {
            // The panic may have left the arena mid-replay; drop exactly
            // that arena (the rest of the LRU stays warm) so the next
            // request for this topology rebuilds instead of reusing
            // poisoned queue state.
            arenas.remove(fingerprint);
            Err(ChaseError::Panicked(panic_message(&panic)))
        }
    }
}

/// One verification chase, routed inline (this worker's own arenas) or
/// through the verify scheduler's dispatcher, per `verify_threads`.
fn chase(
    inner: &Inner,
    arenas: &mut ArenaLru,
    compiled: &Arc<CompiledTopology>,
    program: &Program,
    plan: &Arc<CommPlan>,
) -> Result<VerifyReport, ChaseError> {
    let Some(verify_queue) = &inner.verify_queue else {
        return chase_through(inner, arenas, compiled, program, plan);
    };
    let (tx, rx) = mpsc::channel();
    let job = VerifyJob {
        program: program.clone(),
        plan: Arc::clone(plan),
        compiled: Arc::clone(compiled),
        reply: tx,
    };
    if verify_queue.push(job).is_err() {
        // Only possible mid-shutdown; reject rather than panic the worker.
        return Err(ChaseError::Panicked(
            "verify scheduler shut down".to_owned(),
        ));
    }
    rx.recv()
        .unwrap_or_else(|_| Err(ChaseError::Panicked("verify dispatcher died".to_owned())))
}

fn handle(
    inner: &Inner,
    seq: u64,
    request: AnalysisRequest,
    arenas: &mut ArenaLru,
) -> AnalysisResponse {
    let start = Instant::now();
    // Every request gets a trace: one "request" root span, with the
    // analyzer's stage spans (and the "verify" chase span) nested under
    // it on a miss. The trace id rides the response so the wire layer can
    // echo it next to the span log.
    let tracer = inner.obs.tracer();
    let span = tracer.start(tracer.new_trace(), None, "request");
    let ctx = span.ctx();
    let fingerprint = request_fingerprint(&request.program, &request.topology, &request.config);
    let (outcome, provenance) = match inner.cache.get(fingerprint) {
        Some(outcome)
            // lint: relaxed-ok(one-way flag; the warm set is published under its own lock)
            if inner.warm_active.load(Ordering::Relaxed)
                && inner.warm.lock().contains(&fingerprint) =>
        {
            inner.metrics.snapshot_warm_hits.inc();
            (outcome, CacheProvenance::Warm)
        }
        Some(outcome) => (outcome, CacheProvenance::Hit),
        None => {
            // catch_unwind so a panic in the analysis of one (possibly
            // hostile) request rejects that request instead of killing
            // the worker and, via the dropped reply channel, the client.
            // (Replay panics are already contained — and their arena
            // dropped — inside `chase_through`.)
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                compute(inner, &request, fingerprint, arenas, ctx)
            }));
            let computed: ServiceOutcome = Arc::new(match result {
                Ok(outcome) => outcome,
                Err(panic) => Err(Rejection {
                    error: ServiceError::Panicked(panic_message(&panic)),
                    diagnostics: Vec::new(),
                }),
            });
            // First writer wins: racing workers converge on one entry and
            // one shared outcome.
            let (winner, _inserted) = inner.cache.insert(fingerprint, computed);
            (winner, CacheProvenance::Miss)
        }
    };
    let handle_micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    let trace_id = ctx.trace.0;
    tracer.finish(span);
    inner.metrics.requests.inc();
    inner.metrics.handle_micros.record(handle_micros);
    // The reservoir stays as an exact cross-check for the histogram
    // percentiles (read only by tests).
    inner.latencies.lock().record(handle_micros);
    AnalysisResponse {
        seq,
        name: request.name,
        fingerprint,
        provenance,
        outcome,
        handle_micros,
        trace_id,
    }
}

/// Resolves named edit ops against `program`'s cell/message declarations.
fn resolve_ops(program: &Program, ops: &[NamedEditOp]) -> Result<Vec<EditOp>, EditRequestError> {
    let cell = |name: &str| {
        program
            .cell_id(name)
            .ok_or_else(|| EditRequestError::UnknownCellName(name.to_owned()))
    };
    let message = |name: &str| {
        program
            .message_id(name)
            .ok_or_else(|| EditRequestError::UnknownMessageName(name.to_owned()))
    };
    ops.iter()
        .map(|op| {
            Ok(match op {
                NamedEditOp::Append {
                    cell: c,
                    write,
                    message: m,
                } => {
                    let m = message(m)?;
                    EditOp::AppendOp {
                        cell: cell(c)?,
                        op: if *write { Op::write(m) } else { Op::read(m) },
                    }
                }
                NamedEditOp::RemoveTail { cell: c } => EditOp::RemoveTailOp { cell: cell(c)? },
                NamedEditOp::AddLink { a, b } => EditOp::AddLink {
                    a: cell(a)?,
                    b: cell(b)?,
                },
                NamedEditOp::RemoveLink { a, b } => EditOp::RemoveLink {
                    a: cell(a)?,
                    b: cell(b)?,
                },
            })
        })
        .collect()
}

/// Re-keys `session` into the table under `key`, evicting the
/// least-recently-edited sessions past the capacity bound and keeping the
/// session gauge current.
fn store_session(inner: &Inner, state: &mut EditState, key: u128, session: IncrementalSession) {
    state.tick += 1;
    let tick = state.tick;
    // Re-keying over an existing entry (two bases edited into the same
    // program) keeps the newer session; the replaced one is just dropped.
    state.sessions.insert(key, SessionSlot { tick, session });
    let capacity = inner.config.session_capacity.max(1);
    while state.sessions.len() > capacity {
        let lru = state
            .sessions
            .iter()
            .min_by_key(|(_, slot)| slot.tick)
            .map(|(&key, _)| key);
        let Some(lru) = lru else { break };
        state.sessions.remove(&lru);
        inner.metrics.session_evictions.inc();
    }
    inner
        .metrics
        .incremental_sessions
        .set(i64::try_from(state.sessions.len()).unwrap_or(i64::MAX));
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_owned()
    }
}

/// The shared compilation for a request's `(topology, config)` pair:
/// served from the compilation cache, compiled and published on a miss
/// (first writer wins, as with the plan cache).
fn compiled_for(inner: &Inner, request: &AnalysisRequest) -> Arc<CompiledTopology> {
    let key = CompiledTopology::fingerprint_of(&request.topology, &request.config);
    match inner.compilations.get(key) {
        Some(compiled) => compiled,
        None => {
            let built = CompiledTopology::compile(&request.topology, &request.config).into_shared();
            inner.compilations.insert(key, built).0
        }
    }
}

fn compute(
    inner: &Inner,
    request: &AnalysisRequest,
    fingerprint: u128,
    arenas: &mut ArenaLru,
    ctx: SpanCtx,
) -> Result<Certified, Rejection> {
    let start = Instant::now();
    let compiled = compiled_for(inner, request);
    // Record the request inputs (first writer wins) so a later `edit`
    // naming this fingerprint as its base can seed an incremental session
    // even when no warm session exists.
    let _ = inner.seeds.insert(
        fingerprint,
        Arc::new(SeedInputs {
            program: request.program.clone(),
            compiled: Arc::clone(&compiled),
        }),
    );
    let analyzer = Analyzer::new(Arc::clone(&compiled)).with_obs(Arc::clone(&inner.obs));
    let (result, diagnostics) = analyzer
        .diagnose_in(&request.program, Some(ctx))
        .into_parts();
    let diagnostics: Vec<Diagnostic> = diagnostics.into_iter().collect();
    let analysis = match result {
        Ok(analysis) => analysis,
        Err(error) => {
            return Err(Rejection {
                error: ServiceError::Analysis(error),
                diagnostics,
            })
        }
    };
    let labeling_method = analysis.labeling_method();
    let plan = Arc::new(analysis.into_plan());
    let message_labels = request
        .program
        .message_ids()
        .map(|m| (request.program.message(m).name().to_owned(), plan.label(m)))
        .collect();
    let verified = if inner.config.verify {
        // Chase the certification with a simulator replay — through this
        // worker's warm arena LRU, or the dedicated verifier pool when
        // `verify_threads` is set. The span covers the whole chase,
        // scheduler queueing included.
        let chase_span = inner
            .obs
            .tracer()
            .start(ctx.trace, Some(ctx.parent), "verify");
        let chased = chase(inner, arenas, &compiled, &request.program, &plan);
        inner.obs.tracer().finish(chase_span);
        match chased {
            Ok(report) => {
                inner.tally_chase(&request.topology, &report);
                Some(report)
            }
            Err(ChaseError::Model(error)) => {
                return Err(Rejection {
                    error: ServiceError::Analysis(CoreError::Model(error)),
                    diagnostics,
                })
            }
            Err(ChaseError::Panicked(message)) => {
                return Err(Rejection {
                    error: ServiceError::Panicked(message),
                    diagnostics: Vec::new(),
                })
            }
        }
    } else {
        None
    };
    let analysis_micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    Ok(Certified {
        max_queues_per_interval: plan.requirements().max_per_interval(),
        plan,
        labeling_method,
        message_labels,
        verified,
        analysis_micros,
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_core::Lookahead;
    use systolic_model::parse_program;
    use systolic_workloads::{fig7, fig7_topology, fig9, fig9_topology};

    fn fig7_request() -> AnalysisRequest {
        AnalysisRequest::new("fig7", fig7(3), fig7_topology())
    }

    #[test]
    fn miss_then_hit_share_one_outcome() {
        let service = AnalysisService::new(ServiceConfig::default());
        let a = service.submit(fig7_request()).wait();
        let b = service.submit(fig7_request()).wait();
        assert_eq!(a.provenance, CacheProvenance::Miss);
        assert_eq!(b.provenance, CacheProvenance::Hit);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert!(
            Arc::ptr_eq(&a.outcome, &b.outcome),
            "hit must share the cached Arc"
        );
        assert_eq!(service.cache_entries(), 1);
    }

    #[test]
    fn certified_outcome_carries_plan_details() {
        let service = AnalysisService::new(ServiceConfig::default());
        let response = service.submit(fig7_request()).wait();
        let certified = response.outcome.as_ref().as_ref().unwrap();
        assert_eq!(certified.max_queues_per_interval, 1);
        assert_eq!(certified.message_labels.len(), 3);
        assert_eq!(certified.labeling_method, LabelingMethod::Section6);
        assert!(certified.verified.is_none());
    }

    #[test]
    fn verification_chase_runs_when_configured() {
        let config = ServiceConfig {
            verify: true,
            ..Default::default()
        };
        let service = AnalysisService::new(config);
        let response = service.submit(fig7_request()).wait();
        let certified = response.outcome.as_ref().as_ref().unwrap();
        let report = certified.verified.as_ref().expect("verification ran");
        assert!(report.completed);
    }

    #[test]
    fn verification_chase_reuses_arena_across_mixed_topologies() {
        // Alternating topologies force the worker's arena cache to rebuild;
        // repeats of one topology reuse it. Either way the chase must be
        // correct (single worker so the arena cache is actually exercised
        // across consecutive requests).
        let config = ServiceConfig {
            verify: true,
            workers: 1,
            ..Default::default()
        };
        let service = AnalysisService::new(config);
        let mut requests = Vec::new();
        for reps in 1..=4 {
            requests.push(AnalysisRequest::new(
                format!("fig7x{reps}"),
                fig7(reps),
                fig7_topology(),
            ));
        }
        let mut fig9_request = AnalysisRequest::new("fig9", fig9(), fig9_topology());
        fig9_request.config.queues_per_interval = 2;
        requests.push(fig9_request);
        requests.push(AnalysisRequest::new("fig7x5", fig7(5), fig7_topology()));
        let responses = service.run_batch(requests);
        for response in &responses {
            let certified = response.outcome.as_ref().as_ref().unwrap();
            let report = certified.verified.as_ref().expect("verification ran");
            assert!(report.completed, "{} failed its chase", response.name);
        }
    }

    #[test]
    fn arena_lru_keeps_interleaved_topologies_warm() {
        // A,B,A,B,... misses over two topologies: the old single-arena
        // worker cache rebuilt on every request; the LRU builds each
        // topology's arena once and hits thereafter (single worker so one
        // LRU sees the whole stream).
        let config = ServiceConfig {
            verify: true,
            workers: 1,
            ..Default::default()
        };
        let service = AnalysisService::new(config);
        let mut requests = Vec::new();
        for round in 1..=4 {
            // Distinct programs per round keep every request a plan-cache
            // miss, so every request actually chases. The arena is keyed
            // by the *compiled topology* (topology + analysis config),
            // shared across all four rounds of each stream.
            requests.push(AnalysisRequest::new(
                format!("fig7x{round}"),
                fig7(round),
                fig7_topology(),
            ));
            let transfer = parse_program(&format!(
                "cells 2\nmessage A: c0 -> c1\nprogram c0 {{ W(A)*{round} }}\n\
                 program c1 {{ R(A)*{round} }}\n",
            ))
            .unwrap();
            requests.push(AnalysisRequest::new(
                format!("linear#{round}"),
                transfer,
                Topology::linear(2),
            ));
        }
        let responses = service.run_batch(requests);
        assert!(responses.iter().all(AnalysisResponse::is_certified));
        let arenas = service.arena_cache_stats();
        assert_eq!(arenas.misses, 2, "one arena build per topology: {arenas:?}");
        assert_eq!(
            arenas.hits, 6,
            "every later chase reuses a warm arena: {arenas:?}"
        );
        assert_eq!(arenas.evictions, 0);
        assert!(arenas.hit_rate() > 0.7);
    }

    #[test]
    fn dedicated_verifier_pool_chases_misses() {
        let config = ServiceConfig {
            verify: true,
            verify_threads: 2,
            ..Default::default()
        };
        let service = AnalysisService::new(config);
        let mut requests = Vec::new();
        for reps in 1..=6 {
            requests.push(AnalysisRequest::new(
                format!("fig7x{reps}"),
                fig7(reps),
                fig7_topology(),
            ));
        }
        let mut nine = AnalysisRequest::new("fig9", fig9(), fig9_topology());
        nine.config.queues_per_interval = 2;
        requests.push(nine);
        let responses = service.run_batch(requests);
        for response in &responses {
            let certified = response.outcome.as_ref().as_ref().unwrap();
            let report = certified.verified.as_ref().expect("pool chased the miss");
            assert!(report.completed, "{} failed its chase", response.name);
        }
        let arenas = service.arena_cache_stats();
        assert_eq!(
            arenas.hits + arenas.misses,
            7,
            "every miss was chased: {arenas:?}"
        );
        // Two verifier threads and two topologies: at most one build per
        // (thread, topology) pair.
        assert!(arenas.misses <= 4, "{arenas:?}");
    }

    #[test]
    fn scheduler_reports_coalesced_mixed_topology_fanouts() {
        // Mixed fig7/fig9 misses through the scheduler: every chase is
        // accounted to a fan-out, and the summary grows the scheduler
        // block with per-topology rows.
        let config = ServiceConfig {
            verify: true,
            verify_threads: 2,
            ..Default::default()
        };
        let service = AnalysisService::new(config);
        let mut requests = Vec::new();
        for reps in 1..=4 {
            requests.push(AnalysisRequest::new(
                format!("fig7x{reps}"),
                fig7(reps),
                fig7_topology(),
            ));
        }
        let mut nine = AnalysisRequest::new("fig9", fig9(), fig9_topology());
        nine.config.queues_per_interval = 2;
        requests.push(nine);
        let responses = service.run_batch(requests);
        assert!(responses.iter().all(AnalysisResponse::is_certified));

        let scheduler = service.scheduler_stats().expect("scheduler fanned out");
        assert_eq!(scheduler.items, 5, "every chase coalesced: {scheduler:?}");
        assert!(
            scheduler.fanouts >= 1 && scheduler.fanouts <= 5,
            "{scheduler:?}"
        );
        assert_eq!(scheduler.distinct_topologies, 2, "{scheduler:?}");
        let per_topology_items: u64 = scheduler.per_topology.values().map(|f| f.items).sum();
        assert_eq!(per_topology_items, 5, "{scheduler:?}");
        assert!(scheduler.max_fanout >= 1, "{scheduler:?}");

        let text = service.stats().table().to_text();
        assert!(text.contains("scheduler fan-outs"), "{text}");
        assert!(text.contains("scheduler coalesced jobs"), "{text}");
        assert!(text.contains("scheduler queue depth (max)"), "{text}");
        assert!(text.contains("scheduler distinct topologies"), "{text}");
        assert!(
            text.contains(&format!("fanout[{}]", fig7_topology().spec())),
            "{text}"
        );
        assert!(text.contains("arena cache budget"), "{text}");
    }

    #[test]
    fn arena_budget_resolves_capacity_and_mem_flags() {
        let fixed = ServiceConfig::default();
        assert_eq!(fixed.arena_budget(), ArenaBudget::Fixed(4));
        let auto = ServiceConfig {
            arena_cache_capacity: 0,
            ..Default::default()
        };
        assert_eq!(auto.arena_budget(), ArenaBudget::Auto);
        let bytes = ServiceConfig {
            arena_cache_capacity: 0,
            arena_mem_budget: Some(1 << 20),
            ..Default::default()
        };
        assert_eq!(
            bytes.arena_budget(),
            ArenaBudget::MemBytes(1 << 20),
            "a byte budget takes precedence over capacity"
        );
        // The budget row renders once a chase has exercised the arenas.
        let service = AnalysisService::new(ServiceConfig {
            verify: true,
            arena_cache_capacity: 0,
            ..Default::default()
        });
        assert!(service.submit(fig7_request()).wait().is_certified());
        let text = service.stats().table().to_text();
        assert!(text.contains("auto (observed topologies)"), "{text}");
    }

    #[test]
    fn auto_budget_serves_mixed_topologies_inline() {
        // `--arena-cache-cap 0`: inline chases size their LRUs from the
        // observed distinct-topology cardinality instead of a fixed 4.
        let config = ServiceConfig {
            verify: true,
            workers: 1,
            arena_cache_capacity: 0,
            ..Default::default()
        };
        let service = AnalysisService::new(config);
        let mut requests = Vec::new();
        for round in 1..=3 {
            // Distinct programs, identical configs: every request misses
            // the plan cache (so it chases) while the two topologies keep
            // stable compiled fingerprints (so arenas can stay warm).
            requests.push(AnalysisRequest::new(
                format!("fig7x{round}"),
                fig7(round),
                fig7_topology(),
            ));
            let transfer = parse_program(&format!(
                "cells 2\nmessage A: c0 -> c1\nprogram c0 {{ W(A)*{round} }}\n\
                 program c1 {{ R(A)*{round} }}\n",
            ))
            .unwrap();
            requests.push(AnalysisRequest::new(
                format!("linear#{round}"),
                transfer,
                Topology::linear(2),
            ));
        }
        let responses = service.run_batch(requests);
        assert!(responses.iter().all(AnalysisResponse::is_certified));
        let arenas = service.arena_cache_stats();
        assert_eq!(arenas.misses, 2, "one build per topology: {arenas:?}");
        assert_eq!(arenas.hits, 4, "later chases stay warm: {arenas:?}");
        assert_eq!(
            arenas.evictions, 0,
            "auto budget keeps both warm: {arenas:?}"
        );
    }

    #[test]
    fn verify_threads_without_verify_is_inert() {
        let config = ServiceConfig {
            verify: false,
            verify_threads: 4,
            ..Default::default()
        };
        let service = AnalysisService::new(config);
        let response = service.submit(fig7_request()).wait();
        let certified = response.outcome.as_ref().as_ref().unwrap();
        assert!(certified.verified.is_none(), "no chase without verify");
        assert_eq!(service.arena_cache_stats(), ArenaCacheStats::default());
    }

    #[test]
    fn summary_breaks_verification_down_by_topology() {
        // One topology whose chases complete and one whose latch replay
        // blocks: the per-topology tallies must separate them.
        let sim = SimConfig {
            queue: systolic_sim::QueueConfig {
                capacity: 0,
                extension: false,
            },
            ..Default::default()
        };
        let config = ServiceConfig {
            verify: true,
            sim,
            workers: 1,
            ..Default::default()
        };
        let service = AnalysisService::new(config);
        // fig7 completes even on latch queues.
        for reps in 1..=2 {
            let response = service
                .submit(AnalysisRequest::new(
                    format!("fig7x{reps}"),
                    fig7(reps),
                    fig7_topology(),
                ))
                .wait();
            assert!(response.is_certified());
        }
        // P2 certifies under lookahead but deadlocks on latches.
        let mut p2 = AnalysisRequest::new(
            "p2-latch",
            systolic_workloads::fig5_p2(),
            Topology::linear(2),
        );
        p2.config.queues_per_interval = 2;
        p2.config.lookahead = Lookahead::Unbounded;
        assert!(service.submit(p2).wait().is_certified());

        let stats = service.stats();
        assert_eq!(
            stats.verify_topologies,
            vec![
                TopologyVerifyStats {
                    spec: "linear:2".into(),
                    verified: 0,
                    blocked: 1
                },
                TopologyVerifyStats {
                    spec: fig7_topology().spec(),
                    verified: 2,
                    blocked: 0
                },
            ]
        );
        let text = stats.table().to_text();
        assert!(text.contains("verify[linear:2]"), "{text}");
        assert!(text.contains("0 ok / 1 blocked"), "{text}");
        assert!(text.contains("2 ok / 0 blocked"), "{text}");
        assert!(text.contains("arena cache hits"), "{text}");
    }

    #[test]
    fn arena_survives_a_panicked_request_and_keeps_serving() {
        // A poisoned request panics in *analysis* (never reaching the
        // chase); the worker's warm arenas must survive it and keep
        // hitting for healthy same-topology traffic.
        let config = ServiceConfig {
            verify: true,
            workers: 1,
            ..Default::default()
        };
        let service = AnalysisService::new(config);
        assert!(service
            .submit(AnalysisRequest::new("warm", fig7(2), fig7_topology()))
            .wait()
            .is_certified());

        let program = parse_program(
            "cells 2\nmessage A: c0 -> c1\nmessage B: c0 -> c1\n\
             program c0 { W(B) W(A) }\nprogram c1 { R(A) R(B) }\n",
        )
        .unwrap();
        let mut poisoned = AnalysisRequest::new("poison", program, Topology::linear(2));
        poisoned.config.lookahead =
            Lookahead::Explicit(systolic_core::LookaheadLimits::from_table(vec![None]));
        let response = service.submit(poisoned).wait();
        assert!(matches!(
            response.outcome.as_ref(),
            Err(r) if matches!(r.error, ServiceError::Panicked(_))
        ));

        let after = service
            .submit(AnalysisRequest::new("healthy", fig7(3), fig7_topology()))
            .wait();
        let certified = after.outcome.as_ref().as_ref().unwrap();
        assert!(certified.verified.as_ref().expect("chase ran").completed);
        let arenas = service.arena_cache_stats();
        assert_eq!(
            arenas.hits, 1,
            "the fig7 arena stayed warm across the panic: {arenas:?}"
        );
    }

    #[test]
    fn failed_chase_reports_first_blocked_cell_and_cycle() {
        // Certify P2 under lookahead, then replay it on capacity-0 latch
        // queues: the chase deadlocks and the report must say where.
        let sim = SimConfig {
            queue: systolic_sim::QueueConfig {
                capacity: 0,
                extension: false,
            },
            ..Default::default()
        };
        let config = ServiceConfig {
            verify: true,
            sim,
            ..Default::default()
        };
        let service = AnalysisService::new(config);
        let mut request = AnalysisRequest::new(
            "p2-latch",
            systolic_workloads::fig5_p2(),
            Topology::linear(2),
        );
        request.config.queues_per_interval = 2;
        request.config.lookahead = Lookahead::Unbounded;
        let response = service.submit(request).wait();
        let certified = response.outcome.as_ref().as_ref().unwrap();
        let report = certified.verified.as_ref().expect("verification ran");
        assert!(!report.completed, "latch replay must deadlock");
        let deadlock = report.deadlock.as_ref().expect("deadlock detail attached");
        assert_eq!(deadlock.first_blocked, systolic_model::CellId::new(0));
        assert!(deadlock.cycle > 0);
    }

    #[test]
    fn deadlocked_programs_are_rejected_and_cached() {
        let program = parse_program(
            "cells 2\nmessage A: c0 -> c1\nmessage B: c1 -> c0\n\
             program c0 { R(B) W(A) }\nprogram c1 { R(A) W(B) }\n",
        )
        .unwrap();
        let request = AnalysisRequest::new("deadlock", program, Topology::linear(2));
        let service = AnalysisService::new(ServiceConfig::default());
        let a = service.submit(request.clone()).wait();
        assert!(matches!(
            a.outcome.as_ref(),
            Err(r) if matches!(r.error, ServiceError::Analysis(CoreError::ProgramDeadlocked { .. }))
        ));
        let rejection = a.outcome.as_ref().as_ref().unwrap_err();
        assert!(
            !rejection.diagnostics.is_empty(),
            "rejections carry structured diagnostics"
        );
        let b = service.submit(request).wait();
        assert_eq!(b.provenance, CacheProvenance::Hit, "errors are cached too");
    }

    #[test]
    fn different_configs_are_different_cache_entries() {
        let service = AnalysisService::new(ServiceConfig::default());
        let mut request = fig7_request();
        let a = service.submit(request.clone()).wait();
        request.config.lookahead = Lookahead::Unbounded;
        request.config.queues_per_interval = 2;
        let b = service.submit(request).wait();
        assert_eq!(b.provenance, CacheProvenance::Miss);
        assert_ne!(a.fingerprint, b.fingerprint);
        assert_eq!(service.cache_entries(), 2);
    }

    #[test]
    fn run_batch_preserves_order_and_counts() {
        let service = AnalysisService::new(ServiceConfig::default());
        let requests: Vec<AnalysisRequest> = (0..20)
            .map(|i| {
                let mut r = fig7_request();
                r.name = format!("req-{i}");
                r
            })
            .collect();
        let responses = service.run_batch(requests);
        assert_eq!(responses.len(), 20);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.name, format!("req-{i}"));
            assert!(r.is_certified());
        }
        let stats = service.stats();
        assert_eq!(stats.requests, 20);
        // 20 identical requests: at least one miss, and once cached every
        // later request hits. (More than one miss is possible only if
        // several workers raced the first fill.)
        let hits = stats.cache.hits;
        assert!(hits >= 1, "some requests must hit");
        assert_eq!(service.cache_entries(), 1);
    }

    #[test]
    fn batch_misses_share_one_compilation() {
        // 16 distinct programs on one topology: 16 plan-cache misses but a
        // single topology compilation, shared across the batch.
        let service = AnalysisService::new(ServiceConfig::default());
        let requests: Vec<AnalysisRequest> = (1..=16)
            .map(|reps| AnalysisRequest::new(format!("fig7x{reps}"), fig7(reps), fig7_topology()))
            .collect();
        let responses = service.run_batch(requests);
        assert!(responses.iter().all(AnalysisResponse::is_certified));
        assert_eq!(service.cache_entries(), 16);
        let stats = service.compilation_cache_stats();
        assert_eq!(stats.insertions, 1, "one compilation for the whole batch");
        assert_eq!(stats.entries, 1);
        assert!(stats.hits >= 15, "later misses reuse the compilation");

        // A different topology (or config) compiles separately.
        let mut other = AnalysisRequest::new("fig9", fig9(), fig9_topology());
        other.config.queues_per_interval = 2;
        assert!(service.submit(other).wait().is_certified());
        assert_eq!(service.compilation_cache_stats().entries, 2);
    }

    #[test]
    fn backpressure_bounds_the_queue() {
        // One worker, tiny queue: a 50-request batch must still complete,
        // paced by backpressure rather than queue growth.
        let config = ServiceConfig {
            workers: 1,
            queue_depth: 2,
            ..Default::default()
        };
        let service = AnalysisService::new(config);
        let requests: Vec<AnalysisRequest> = (0..50).map(|_| fig7_request()).collect();
        let responses = service.run_batch(requests);
        assert_eq!(responses.len(), 50);
        assert!(responses.iter().all(AnalysisResponse::is_certified));
    }

    #[test]
    fn infeasible_config_is_a_rejected_outcome() {
        let program = fig9();
        let mut request = AnalysisRequest::new("fig9", program, fig9_topology());
        request.config.queues_per_interval = 1; // fig9 needs 2
        let service = AnalysisService::new(ServiceConfig::default());
        let response = service.submit(request).wait();
        assert!(matches!(
            response.outcome.as_ref(),
            Err(r) if matches!(r.error, ServiceError::Analysis(CoreError::Infeasible { .. }))
        ));
        let rejection = response.outcome.as_ref().as_ref().unwrap_err();
        let infeasible = rejection
            .diagnostics
            .iter()
            .find(|d| d.code() == systolic_core::DiagnosticCode::Infeasible)
            .expect("infeasible diagnostic");
        assert!(!infeasible.cell_ids().is_empty());
        assert!(!infeasible.message_ids().is_empty());
    }

    #[test]
    fn analysis_panics_are_contained_to_one_request() {
        // An explicit lookahead table shorter than the message count makes
        // the analysis index out of bounds as soon as crossing-off skips
        // the uncovered message — the worker must catch the panic, answer
        // this request as rejected, and keep serving.
        let program = parse_program(
            "cells 2\nmessage A: c0 -> c1\nmessage B: c0 -> c1\n\
             program c0 { W(B) W(A) }\nprogram c1 { R(A) R(B) }\n",
        )
        .unwrap();
        let mut poisoned = AnalysisRequest::new("poison", program, Topology::linear(2));
        poisoned.config.lookahead =
            Lookahead::Explicit(systolic_core::LookaheadLimits::from_table(vec![None]));
        let service = AnalysisService::new(ServiceConfig::default());
        let response = service.submit(poisoned).wait();
        assert!(matches!(
            response.outcome.as_ref(),
            Err(r) if matches!(r.error, ServiceError::Panicked(_))
        ));
        // The pool survives and serves later requests normally.
        let healthy = service.submit(fig7_request()).wait();
        assert!(healthy.is_certified());
    }

    #[test]
    fn latency_reservoir_keeps_late_samples() {
        let mut lat = Latencies::default();
        // Fill the reservoir with zeros, then stream ones: Algorithm R
        // must let late samples displace early ones.
        for _ in 0..MAX_LATENCY_SAMPLES {
            lat.record(0);
        }
        for _ in 0..MAX_LATENCY_SAMPLES {
            lat.record(1);
        }
        assert_eq!(lat.count, 2 * MAX_LATENCY_SAMPLES as u64);
        assert_eq!(lat.samples.len(), MAX_LATENCY_SAMPLES);
        let ones = lat.samples.iter().filter(|&&v| v == 1).count();
        // Expected ~50%; 30%..70% is a >20-sigma-safe band.
        let fraction = ones as f64 / MAX_LATENCY_SAMPLES as f64;
        assert!(
            (0.3..=0.7).contains(&fraction),
            "late samples under-represented: {fraction}"
        );
    }

    #[test]
    fn stats_table_renders() {
        let service = AnalysisService::new(ServiceConfig::default());
        let _ = service.submit(fig7_request()).wait();
        let table = service.stats().table();
        let text = table.to_text();
        assert!(text.contains("requests"));
        assert!(text.contains("hit rate"));
    }

    #[test]
    fn responses_carry_distinct_trace_ids_with_request_spans() {
        let service = AnalysisService::new(ServiceConfig::default());
        let mut ids = Vec::new();
        for reps in 1..=3 {
            let response = service
                .submit(AnalysisRequest::new(
                    format!("fig7x{reps}"),
                    fig7(reps),
                    fig7_topology(),
                ))
                .wait();
            assert!(response.trace_id > 0);
            ids.push(response.trace_id);
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3, "every request gets its own trace");

        let spans = service.obs().tracer().snapshot();
        for &id in &ids {
            let root = spans
                .iter()
                .find(|s| s.trace.0 == id && s.name == "request")
                .expect("each trace has a request root span");
            assert!(root.parent.is_none());
            // Misses nest analyzer stage spans under the request root.
            let stages: Vec<_> = spans
                .iter()
                .filter(|s| s.trace.0 == id && s.name != "request")
                .collect();
            assert!(!stages.is_empty(), "miss traces carry stage spans");
            assert!(stages.iter().all(|s| s.parent == Some(root.span)));
        }
    }

    #[test]
    fn histogram_percentiles_bound_the_reservoir_truth() {
        let service = AnalysisService::new(ServiceConfig::default());
        let requests: Vec<AnalysisRequest> = (1..=32)
            .map(|reps| AnalysisRequest::new(format!("fig7x{reps}"), fig7(reps), fig7_topology()))
            .collect();
        let _ = service.run_batch(requests);
        let stats = service.stats();

        // The reservoir (kept purely as this cross-check) holds every
        // sample exactly while under capacity.
        let (count, max, mut samples) = {
            let lat = service.inner.latencies.lock();
            (lat.count, lat.max_micros, lat.samples.clone())
        };
        assert_eq!(stats.requests, count);
        assert_eq!(stats.max_micros, max);
        samples.sort_unstable();
        for (q, estimate) in [(0.5, stats.p50_micros), (0.99, stats.p99_micros)] {
            let rank = ((q * count as f64).ceil() as usize).clamp(1, count as usize);
            let exact = samples[rank - 1];
            let estimate = estimate as u64;
            assert!(
                estimate >= exact,
                "histogram q={q} must never underestimate: {estimate} < {exact}"
            );
            assert!(
                estimate <= exact.saturating_mul(2).max(1),
                "histogram q={q} overestimates by 2x at most: {estimate} vs {exact}"
            );
        }
    }

    #[test]
    fn registry_mirrors_service_counters_and_outcomes() {
        let config = ServiceConfig {
            verify: true,
            workers: 1,
            ..Default::default()
        };
        let service = AnalysisService::new(config);
        for reps in 1..=3 {
            assert!(service
                .submit(AnalysisRequest::new(
                    format!("fig7x{reps}"),
                    fig7(reps),
                    fig7_topology(),
                ))
                .wait()
                .is_certified());
        }
        let snapshot = service.registry_snapshot();
        assert_eq!(snapshot.counter_value(names::SERVICE_REQUESTS, &[]), 3);
        assert_eq!(
            snapshot
                .histogram_value(names::SERVICE_HANDLE_DURATION, &[])
                .count,
            3
        );
        let spec = fig7_topology().spec();
        assert_eq!(
            snapshot.counter_value(
                names::VERIFY_OUTCOMES,
                &[("topology", &spec), ("outcome", "ok")],
            ),
            3
        );
        // The arena series come from the worker's LRU (single writer).
        let arenas = service.arena_cache_stats();
        assert_eq!(arenas.misses, 1);
        assert_eq!(arenas.hits, 2);
        // Plan-cache counters are mirrored into export gauges on snapshot.
        assert_eq!(snapshot.gauge_value(names::PLAN_CACHE_MISSES, &[]), 3);
        assert!(snapshot.gauge_value(names::HW_THREADS, &[]) >= 1);
        // Queue drained: depth gauge returns to zero.
        assert_eq!(snapshot.gauge_value(names::SERVICE_QUEUE_DEPTH, &[]), 0);
        // And the whole thing renders as a Prometheus exposition.
        let text = snapshot.render_prometheus();
        assert!(text.contains("systolic_service_requests_total 3"), "{text}");
        assert!(
            text.contains("systolic_analyzer_stage_duration_micros_bucket"),
            "{text}"
        );
    }

    // --- incremental edit path ---

    /// Four cells, two independent A/B streams: appending the balanced
    /// pair W(A)/R(A) dirties 2 of 4 cells — exactly the default 0.5
    /// fallback ratio, which is not *exceeded*, so the edit stays on the
    /// incremental path.
    const EDIT_BASE: &str = "cells 4\n\
         message A: c0 -> c1\n\
         message B: c2 -> c3\n\
         program c0 { W(A) }\n\
         program c1 { R(A) }\n\
         program c2 { W(B) }\n\
         program c3 { R(B) }\n";

    fn edit_base_request(name: &str) -> AnalysisRequest {
        AnalysisRequest::new(name, parse_program(EDIT_BASE).unwrap(), Topology::linear(4))
    }

    fn append(cell: &str, write: bool, message: &str) -> NamedEditOp {
        NamedEditOp::Append {
            cell: cell.to_owned(),
            write,
            message: message.to_owned(),
        }
    }

    #[test]
    fn edit_with_unknown_base_is_rejected() {
        let service = AnalysisService::new(ServiceConfig::default());
        let err = service.apply_edit("e", 42, &[]).unwrap_err();
        assert_eq!(err, EditRequestError::UnknownBase { base: 42 });
        assert!(err.to_string().contains("submit the full program first"));
    }

    #[test]
    fn edit_matches_a_fresh_submit_of_the_edited_program() {
        let service = AnalysisService::new(ServiceConfig::default());
        let base = service.submit(edit_base_request("base")).wait();
        assert!(base.is_certified());

        let ops = [append("c0", true, "A"), append("c1", false, "A")];
        let edit = service.apply_edit("e1", base.fingerprint, &ops).unwrap();
        assert_eq!(edit.base, base.fingerprint);
        assert_eq!(edit.response.provenance, CacheProvenance::Incremental);
        assert_eq!(edit.reuse.dirty_cells, 2);
        assert!(edit.reuse.fallback.is_none());
        assert!(edit.reuse.reused_routes, "topology untouched");

        // The incremental outcome must be indistinguishable from a
        // from-scratch analysis of the edited program text.
        let edited = EDIT_BASE
            .replace("program c0 { W(A) }", "program c0 { W(A)*2 }")
            .replace("program c1 { R(A) }", "program c1 { R(A)*2 }");
        let fresh = service
            .submit(AnalysisRequest::new(
                "fresh",
                parse_program(&edited).unwrap(),
                Topology::linear(4),
            ))
            .wait();
        assert_eq!(
            fresh.provenance,
            CacheProvenance::Miss,
            "incremental outcomes are not published to the plan cache"
        );
        assert_eq!(edit.response.fingerprint, fresh.fingerprint);
        let incremental = edit.response.outcome.as_ref().as_ref().unwrap();
        let scratch = fresh.outcome.as_ref().as_ref().unwrap();
        assert_eq!(incremental.plan.fingerprint(), scratch.plan.fingerprint());
        assert_eq!(incremental.diagnostics, scratch.diagnostics);
        assert_eq!(incremental.message_labels, scratch.message_labels);
    }

    #[test]
    fn edits_chain_on_the_returned_fingerprint() {
        let service = AnalysisService::new(ServiceConfig::default());
        let base = service.submit(edit_base_request("base")).wait();
        let first = service
            .apply_edit(
                "e1",
                base.fingerprint,
                &[append("c0", true, "A"), append("c1", false, "A")],
            )
            .unwrap();
        assert!(first.response.is_certified());
        let second = service
            .apply_edit(
                "e2",
                first.response.fingerprint,
                &[append("c2", true, "B"), append("c3", false, "B")],
            )
            .unwrap();
        assert!(second.response.is_certified());
        assert_ne!(second.response.fingerprint, first.response.fingerprint);
        // Both edits ran warm (the second from the stored session).
        assert!(second.reuse.reused_routes);
        let stats = service.incremental_stats();
        assert_eq!(stats.edits, 2);
        assert!(stats.reuse_hits >= 1);
    }

    #[test]
    fn invalid_edit_batches_preserve_the_base_session() {
        let service = AnalysisService::new(ServiceConfig::default());
        let base = service.submit(edit_base_request("base")).wait();

        // Name resolution failure: never reaches the core edit layer.
        let err = service
            .apply_edit(
                "bad-name",
                base.fingerprint,
                &[NamedEditOp::RemoveTail {
                    cell: "nope".to_owned(),
                }],
            )
            .unwrap_err();
        assert_eq!(err, EditRequestError::UnknownCellName("nope".to_owned()));

        // Core-layer rejection: linear topologies are not link-editable.
        let err = service
            .apply_edit(
                "bad-op",
                base.fingerprint,
                &[NamedEditOp::AddLink {
                    a: "c0".to_owned(),
                    b: "c3".to_owned(),
                }],
            )
            .unwrap_err();
        assert!(matches!(err, EditRequestError::Edit(_)));

        // The base session survived both rejections and still edits.
        let edit = service
            .apply_edit(
                "good",
                base.fingerprint,
                &[append("c0", true, "A"), append("c1", false, "A")],
            )
            .unwrap();
        assert!(edit.response.is_certified());
    }

    #[test]
    fn session_table_evicts_lru_at_capacity() {
        let service = AnalysisService::new(ServiceConfig {
            session_capacity: 1,
            ..Default::default()
        });
        let a = service.submit(edit_base_request("a")).wait();
        let b = service.submit(fig7_request()).wait();
        let balanced = [append("c0", true, "A"), append("c1", false, "A")];
        assert!(service
            .apply_edit("ea", a.fingerprint, &balanced)
            .unwrap()
            .response
            .is_certified());
        // The second base's session displaces the first (capacity 1).
        // (The batch keeps A's writes and reads balanced so the edited
        // program stays valid; whether analysis certifies it is
        // irrelevant here.)
        assert!(service
            .apply_edit(
                "eb",
                b.fingerprint,
                &[append("c2", true, "A"), append("c3", false, "A")],
            )
            .is_ok());
        let stats = service.incremental_stats();
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.edits, 2);
        // An evicted base is still editable — it cold-seeds from the
        // recorded request inputs instead of failing.
        assert!(service.apply_edit("ea2", a.fingerprint, &balanced).is_ok());

        // The summary table surfaces the incremental rows once edits ran.
        let text = service.stats().table().to_text();
        assert!(text.contains("incremental edits"), "{text}");
        assert!(text.contains("incremental sessions"), "{text}");
        assert!(text.contains("incremental session evictions"), "{text}");
    }

    #[test]
    fn certified_edits_are_chased_when_verify_is_on() {
        let service = AnalysisService::new(ServiceConfig {
            verify: true,
            ..Default::default()
        });
        let base = service.submit(edit_base_request("base")).wait();
        let edit = service
            .apply_edit(
                "e1",
                base.fingerprint,
                &[append("c0", true, "A"), append("c1", false, "A")],
            )
            .unwrap();
        let certified = edit.response.outcome.as_ref().as_ref().unwrap();
        let report = certified.verified.as_ref().expect("edit was chased");
        assert!(report.completed);
    }

    #[test]
    fn route_cache_counters_mirror_into_export_gauges() {
        // 300 cells exceeds MAX_CLOSURE_CELLS (256), so the compiled
        // topology skips the eager route closure and fills the per-pair
        // LRU on demand — one miss for the single message routed here.
        let links: String = (0..299)
            .map(|i| format!("{i}-{}", i + 1))
            .collect::<Vec<_>>()
            .join(",");
        let topology = Topology::from_spec(&format!("graph:300:{links}")).unwrap();
        let program = parse_program(
            "cells 300\n\
             message A: c0 -> c5\n\
             program c0 { W(A) }\n\
             program c5 { R(A) }\n",
        )
        .unwrap();
        let service = AnalysisService::new(ServiceConfig::default());
        let response = service
            .submit(AnalysisRequest::new("big", program, topology))
            .wait();
        assert!(response.is_certified());
        let routes = service.route_cache_stats();
        assert!(routes.misses >= 1, "{routes:?}");
        let snapshot = service.registry_snapshot();
        assert!(snapshot.gauge_value(names::ROUTE_CACHE_MISSES, &[]) >= 1);
    }

    /// A small mixed working set for the snapshot tests: several certified
    /// sizes of fig7 plus one cached rejection.
    fn snapshot_working_set() -> Vec<AnalysisRequest> {
        let mut requests: Vec<AnalysisRequest> = (1..=4)
            .map(|reps| AnalysisRequest::new(format!("fig7x{reps}"), fig7(reps), fig7_topology()))
            .collect();
        // A deadlocked exchange, so the snapshot also carries a cached
        // rejection.
        let deadlocked = parse_program(
            "cells 2\nmessage A: c0 -> c1\nmessage B: c1 -> c0\n\
             program c0 { R(B) W(A) }\nprogram c1 { R(A) W(B) }\n",
        )
        .unwrap();
        requests.push(AnalysisRequest::new(
            "deadlock",
            deadlocked,
            Topology::linear(2),
        ));
        requests
    }

    #[test]
    fn snapshot_roundtrip_warms_a_fresh_service() {
        let warm_source = AnalysisService::new(ServiceConfig::default());
        let originals = warm_source.run_batch(snapshot_working_set());
        let bytes = warm_source.export_snapshot();

        let restarted = AnalysisService::new(ServiceConfig::default());
        let report = restarted.import_snapshot(&bytes).expect("snapshot loads");
        assert_eq!(report.plans, 5);
        assert_eq!(report.seeds, 5);
        assert_eq!(report.dropped, 0);

        let replayed = restarted.run_batch(snapshot_working_set());
        for (original, replay) in originals.iter().zip(&replayed) {
            assert_eq!(
                replay.provenance,
                CacheProvenance::Warm,
                "{} must be served from the snapshot",
                replay.name
            );
            assert_eq!(replay.fingerprint, original.fingerprint);
            assert_eq!(
                replay.is_certified(),
                original.is_certified(),
                "{} outcome must survive the roundtrip",
                replay.name
            );
        }
        // Warmed entries stay Warm on later hits, so coverage is
        // observable across a whole replayed batch.
        let again = restarted.submit(fig7_request()).wait();
        assert_eq!(again.provenance, CacheProvenance::Warm);
        let stats = restarted.snapshot_stats();
        assert_eq!(stats.loads, 1);
        assert_eq!(stats.loaded_plans, 5);
        assert_eq!(stats.loaded_seeds, 5);
        assert_eq!(stats.load_rejected, 0);
        assert!(stats.warm_hits >= 6);
    }

    #[test]
    fn rejected_snapshot_load_leaves_service_cold() {
        let warm_source = AnalysisService::new(ServiceConfig::default());
        let _ = warm_source.run_batch(snapshot_working_set());
        let mut bytes = warm_source.export_snapshot();
        bytes[0] ^= 0x20; // break the magic

        let restarted = AnalysisService::new(ServiceConfig::default());
        let error = restarted.import_snapshot(&bytes).expect_err("bad magic");
        assert!(matches!(error, SnapshotError::BadMagic), "{error:?}");
        // Nothing was installed: the next request is a plain cold miss.
        assert_eq!(restarted.cache_entries(), 0);
        let response = restarted.submit(fig7_request()).wait();
        assert_eq!(response.provenance, CacheProvenance::Miss);
        let stats = restarted.snapshot_stats();
        assert_eq!(stats.load_rejected, 1);
        assert_eq!(stats.loads, 0);
        assert_eq!(stats.loaded_plans, 0);
    }

    #[test]
    fn truncated_snapshot_load_leaves_service_cold() {
        let warm_source = AnalysisService::new(ServiceConfig::default());
        let _ = warm_source.run_batch(snapshot_working_set());
        let bytes = warm_source.export_snapshot();

        let restarted = AnalysisService::new(ServiceConfig::default());
        let error = restarted
            .import_snapshot(&bytes[..bytes.len() / 2])
            .expect_err("truncated");
        // Typed rejection (exact variant depends on where the cut lands),
        // and — the guarantee under test — zero partial application.
        let _ = error;
        assert_eq!(restarted.cache_entries(), 0);
        assert_eq!(restarted.snapshot_stats().load_rejected, 1);
        let response = restarted.submit(fig7_request()).wait();
        assert_eq!(response.provenance, CacheProvenance::Miss);
    }

    #[test]
    fn config_skewed_entries_drop_without_failing_the_load() {
        let warm_source = AnalysisService::new(ServiceConfig::default());
        let _ = warm_source.run_batch(snapshot_working_set());
        // Simulate a snapshot written under a different AnalysisConfig:
        // rewrite one plan entry's recorded config hash so it no longer
        // matches its seed's.
        let mut data = snapshot::read_snapshot(&warm_source.export_snapshot()).unwrap();
        data.plans[0].config_hash ^= 1;
        let bytes = snapshot::write_snapshot(&data);

        let restarted = AnalysisService::new(ServiceConfig::default());
        let report = restarted.import_snapshot(&bytes).expect("load succeeds");
        assert_eq!(report.plans, 4, "the skewed entry is dropped, not fatal");
        assert_eq!(report.dropped, 1);
        assert_eq!(restarted.snapshot_stats().dropped, 1);
        assert_eq!(
            restarted
                .registry_snapshot()
                .counter_value(names::SNAPSHOT_DROPPED, &[("reason", "config-skew")]),
            1
        );
    }

    #[test]
    fn locally_computed_outcomes_beat_snapshot_copies() {
        let warm_source = AnalysisService::new(ServiceConfig::default());
        let _ = warm_source.run_batch(snapshot_working_set());
        let bytes = warm_source.export_snapshot();

        let restarted = AnalysisService::new(ServiceConfig::default());
        // This process computes fig7x1 before the snapshot arrives.
        let local = restarted.submit(fig7_request()).wait();
        assert_eq!(local.provenance, CacheProvenance::Miss);
        let report = restarted.import_snapshot(&bytes).expect("loads");
        assert_eq!(report.plans, 4, "the already-cached entry is skipped");
        // Its hits keep reporting plain Hit — the entry was computed
        // here, not restored.
        let again = restarted.submit(fig7_request()).wait();
        assert_eq!(again.provenance, CacheProvenance::Hit);
    }

    #[test]
    fn save_and_load_roundtrip_via_files() {
        let path = std::env::temp_dir().join(format!(
            "systolic-snapshot-test-{}-{:?}.snap",
            std::process::id(),
            std::thread::current().id()
        ));
        let warm_source = AnalysisService::new(ServiceConfig::default());
        let _ = warm_source.run_batch(snapshot_working_set());
        let saved = warm_source.save_snapshot(&path).expect("saves");
        assert_eq!(saved.plans, 5);
        assert!(saved.bytes > 0);
        assert_eq!(warm_source.snapshot_stats().saves, 1);
        assert_eq!(warm_source.snapshot_stats().last_save_bytes, saved.bytes);

        let restarted = AnalysisService::new(ServiceConfig::default());
        let loaded = restarted.load_snapshot(&path).expect("loads");
        assert_eq!(loaded.plans, 5);
        let replay = restarted.submit(fig7_request()).wait();
        assert_eq!(replay.provenance, CacheProvenance::Warm);
        let _ = std::fs::remove_file(&path);

        // A missing file is a rejected load, and the service stays cold.
        let cold = AnalysisService::new(ServiceConfig::default());
        let error = cold.load_snapshot(&path).expect_err("missing file");
        assert!(matches!(error, SnapshotError::Io(_)), "{error:?}");
        assert_eq!(cold.snapshot_stats().load_rejected, 1);
    }
}
