//! `systolicd` — the JSONL front end of the analysis service.
//!
//! ```text
//! systolicd gen   --count 1000 [--seed 42] [--hot-percent 50]
//! systolicd serve [FILE] [--workers 4] [--shards 8] [--capacity 256]
//!                 [--queue-depth 64] [--verify] [--verify-threads N]
//!                 [--arena-cache-cap N] [--arena-mem-budget BYTES]
//!                 [--summary]
//! ```
//!
//! `gen` writes a deterministic stream of mixed workload requests (one
//! JSON object per line) to stdout. `serve` reads request lines from FILE
//! (or stdin), drives them through the service with bounded backpressure,
//! and streams one JSON response per line to stdout in request order;
//! `--verify` chases every certified miss with a simulator replay, and
//! `--verify-threads N` coalesces those chases into batched fan-outs
//! through a cross-topology verify scheduler with `N` workers instead of
//! running them inline in the analysis workers. Warm-arena caches (inline
//! per worker, or per scheduler worker) are sized by `--arena-cache-cap N`
//! (arenas per cache; `0` sizes automatically from the number of distinct
//! topologies observed) or `--arena-mem-budget BYTES` (approximate bytes
//! per cache, which takes precedence); `--summary` prints a
//! throughput/latency/cache table — including arena-cache counters,
//! scheduler fan-out depths, and a per-topology verified/blocked
//! breakdown — to stderr. Exit
//! status is 0 when every line was a well-formed request (rejected
//! analyses still count as served), 2 on usage errors, 1 when some lines
//! were malformed.
//!
//! A full round trip:
//!
//! ```text
//! systolicd gen --count 1000 --seed 7 > requests.jsonl
//! systolicd serve requests.jsonl --workers 8 --summary > responses.jsonl
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::time::Instant;

use systolic_service::wire::{invalid_to_json, parse_request, response_to_json, traffic_to_json};
use systolic_service::{AnalysisService, CacheConfig, ServiceConfig, Ticket};
use systolic_workloads::{traffic, TrafficConfig};

fn usage() -> ! {
    eprintln!(
        "usage:\n  systolicd gen --count N [--seed S] [--hot-percent P]\n  \
         systolicd serve [FILE] [--workers N] [--shards N] [--capacity N] \
         [--queue-depth N] [--verify] [--verify-threads N] \
         [--arena-cache-cap N] [--arena-mem-budget BYTES] [--summary]"
    );
    std::process::exit(2);
}

fn parse_flag_value(args: &mut std::slice::Iter<'_, String>, flag: &str) -> usize {
    match args.next().map(|v| v.parse::<usize>()) {
        Some(Ok(v)) => v,
        _ => {
            eprintln!("systolicd: {flag} needs a non-negative integer value");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => gen_main(&args[1..]),
        Some("serve") => serve_main(&args[1..]),
        _ => usage(),
    }
}

fn gen_main(args: &[String]) {
    let mut count = None;
    let mut seed = 42u64;
    let mut config = TrafficConfig::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--count" => count = Some(parse_flag_value(&mut iter, "--count")),
            "--seed" => seed = parse_flag_value(&mut iter, "--seed") as u64,
            "--hot-percent" => {
                config.hot_percent = parse_flag_value(&mut iter, "--hot-percent").min(100) as u32;
            }
            _ => usage(),
        }
    }
    let Some(count) = count else { usage() };

    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for (i, item) in traffic(&config, seed, count).iter().enumerate() {
        let id = format!("{}#{i}", item.name);
        writeln!(out, "{}", traffic_to_json(&id, item)).expect("writing to stdout succeeds");
    }
    out.flush().expect("flushing stdout succeeds");
}

fn serve_main(args: &[String]) {
    let mut config = ServiceConfig::default();
    let mut cache = CacheConfig::default();
    let mut summary = false;
    let mut input_path = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--workers" => config.workers = parse_flag_value(&mut iter, "--workers").max(1),
            "--shards" => cache.shards = parse_flag_value(&mut iter, "--shards").max(1),
            "--capacity" => {
                cache.capacity_per_shard = parse_flag_value(&mut iter, "--capacity").max(1);
            }
            "--queue-depth" => {
                config.queue_depth = parse_flag_value(&mut iter, "--queue-depth").max(1);
            }
            "--verify" => config.verify = true,
            "--verify-threads" => {
                config.verify_threads = parse_flag_value(&mut iter, "--verify-threads");
            }
            "--arena-cache-cap" => {
                // 0 means "size automatically from observed topologies".
                config.arena_cache_capacity = parse_flag_value(&mut iter, "--arena-cache-cap");
            }
            "--arena-mem-budget" => {
                config.arena_mem_budget =
                    Some(parse_flag_value(&mut iter, "--arena-mem-budget").max(1));
            }
            "--summary" => summary = true,
            path if !path.starts_with('-') && input_path.is_none() => {
                input_path = Some(path.to_owned());
            }
            _ => usage(),
        }
    }
    config.cache = cache;

    let reader: Box<dyn Read> = match &input_path {
        Some(path) => Box::new(std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("systolicd: cannot open {path}: {e}");
            std::process::exit(2);
        })),
        None => Box::new(std::io::stdin()),
    };

    let service = AnalysisService::new(config);
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let started = Instant::now();
    let mut served = 0u64;
    let mut invalid = 0u64;

    // Stream responses in request order while keeping at most
    // `inflight_limit` tickets outstanding: the submission queue provides
    // the backpressure, this window just bounds reply buffering.
    let inflight_limit = config.workers * 2 + config.queue_depth;
    let mut inflight: std::collections::VecDeque<Ticket> = std::collections::VecDeque::new();
    let drain_one = |inflight: &mut std::collections::VecDeque<Ticket>, out: &mut dyn Write| {
        if let Some(ticket) = inflight.pop_front() {
            let response = ticket.wait();
            writeln!(out, "{}", response_to_json(&response)).expect("writing to stdout succeeds");
        }
    };

    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.unwrap_or_else(|e| {
            eprintln!("systolicd: read error: {e}");
            std::process::exit(2);
        });
        if line.trim().is_empty() {
            continue;
        }
        let line_number = i + 1;
        match parse_request(&line, line_number) {
            Ok(request) => {
                if inflight.len() >= inflight_limit {
                    drain_one(&mut inflight, &mut out);
                }
                inflight.push_back(service.submit(request));
                served += 1;
            }
            Err(error) => {
                // Flush pending responses first so output stays in input
                // order, then answer the malformed line inline.
                while !inflight.is_empty() {
                    drain_one(&mut inflight, &mut out);
                }
                writeln!(out, "{}", invalid_to_json(line_number, &error))
                    .expect("writing to stdout succeeds");
                invalid += 1;
            }
        }
    }
    while !inflight.is_empty() {
        drain_one(&mut inflight, &mut out);
    }
    out.flush().expect("flushing stdout succeeds");

    if summary {
        let elapsed = started.elapsed();
        let stats = service.stats();
        let mut table = stats.table();
        let secs = elapsed.as_secs_f64();
        table.row(["wall time (s)", &format!("{secs:.3}")]);
        table.row([
            "throughput (req/s)",
            &format!(
                "{:.0}",
                if secs > 0.0 {
                    served as f64 / secs
                } else {
                    0.0
                }
            ),
        ]);
        table.row(["invalid lines", &invalid.to_string()]);
        eprintln!("{}", table.to_text());
    }

    std::process::exit(i32::from(invalid > 0));
}
