//! `systolicd` — the JSONL front end of the analysis service.
//!
//! ```text
//! systolicd gen   --count 1000 [--seed 42] [--hot-percent 50]
//! systolicd serve [FILE] [--workers 4] [--shards 8] [--capacity 256]
//!                 [--queue-depth 64] [--verify] [--verify-threads N]
//!                 [--arena-cache-cap N] [--arena-mem-budget BYTES]
//!                 [--session-cap N] [--incremental-fallback-ratio R]
//!                 [--summary] [--summary-json]
//!                 [--metrics-file PATH] [--trace-file PATH]
//! ```
//!
//! `gen` writes a deterministic stream of mixed workload requests (one
//! JSON object per line) to stdout. `serve` reads request lines from FILE
//! (or stdin), drives them through the service with bounded backpressure,
//! and streams one JSON response per line to stdout in request order;
//! `--verify` chases every certified miss with a simulator replay, and
//! `--verify-threads N` coalesces those chases into batched fan-outs
//! through a cross-topology verify scheduler with `N` workers instead of
//! running them inline in the analysis workers. Warm-arena caches (inline
//! per worker, or per scheduler worker) are sized by `--arena-cache-cap N`
//! (arenas per cache; `0` sizes automatically from the number of distinct
//! topologies observed) or `--arena-mem-budget BYTES` (approximate bytes
//! per cache, which takes precedence); `--summary` prints a
//! throughput/latency/cache table — including arena-cache counters,
//! scheduler fan-out depths, and a per-topology verified/blocked
//! breakdown — to stderr.
//!
//! Incremental edits: a request line `{"op": "edit", "base": "0x...",
//! "ops": [...]}` reanalyzes an earlier program (named by its response
//! `fingerprint`) through a warm dirty-tracked session instead of from
//! scratch; `--session-cap N` bounds the warm-session table (default 64,
//! LRU eviction) and `--incremental-fallback-ratio R` sets the dirty-cell
//! fraction above which an edit falls back to a from-scratch analysis
//! (default 0.5). Edit responses carry `cache: "incremental"` and a
//! `reuse` object; the summary table gains `incremental *` rows once any
//! edit was served.
//!
//! Observability: `--summary-json` prints the summary as one JSON object
//! to stderr; `--metrics-file PATH` writes the full metrics registry as a
//! Prometheus text exposition on exit; `--trace-file PATH` writes the span
//! log (one JSON object per finished span, `trace` ids matching the
//! `trace` field of wire responses) as JSONL on exit. A request line
//! `{"op": "metrics"}` dumps the registry as one JSON response mid-stream
//! after flushing every prior request. Exit
//! status is 0 when every line was a well-formed request (rejected
//! analyses still count as served), 2 on usage errors, 1 when some lines
//! were malformed.
//!
//! A full round trip:
//!
//! ```text
//! systolicd gen --count 1000 --seed 7 > requests.jsonl
//! systolicd serve requests.jsonl --workers 8 --summary > responses.jsonl
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::time::Instant;

use systolic_service::wire::{
    edit_rejected_to_json, edit_response_to_json, invalid_to_json, metrics_to_json, parse_line,
    response_to_json, traffic_to_json, WireRequest,
};
use systolic_service::{AnalysisService, CacheConfig, Json, ServiceConfig, Ticket};
use systolic_workloads::{traffic, TrafficConfig};

fn usage() -> ! {
    eprintln!(
        "usage:\n  systolicd gen --count N [--seed S] [--hot-percent P]\n  \
         systolicd serve [FILE] [--workers N] [--shards N] [--capacity N] \
         [--queue-depth N] [--verify] [--verify-threads N] \
         [--arena-cache-cap N] [--arena-mem-budget BYTES] \
         [--session-cap N] [--incremental-fallback-ratio R] [--summary] \
         [--summary-json] [--metrics-file PATH] [--trace-file PATH]"
    );
    std::process::exit(2);
}

fn parse_flag_value(args: &mut std::slice::Iter<'_, String>, flag: &str) -> usize {
    match args.next().map(|v| v.parse::<usize>()) {
        Some(Ok(v)) => v,
        _ => {
            eprintln!("systolicd: {flag} needs a non-negative integer value");
            std::process::exit(2);
        }
    }
}

fn parse_flag_ratio(args: &mut std::slice::Iter<'_, String>, flag: &str) -> f64 {
    match args.next().map(|v| v.parse::<f64>()) {
        Some(Ok(v)) if (0.0..=1.0).contains(&v) => v,
        _ => {
            eprintln!("systolicd: {flag} needs a ratio in 0.0..=1.0");
            std::process::exit(2);
        }
    }
}

fn parse_flag_path(args: &mut std::slice::Iter<'_, String>, flag: &str) -> String {
    match args.next() {
        Some(v) if !v.is_empty() => v.clone(),
        _ => {
            eprintln!("systolicd: {flag} needs a file path");
            std::process::exit(2);
        }
    }
}

/// Writes one output line, turning stdout failures into process exits
/// instead of panics: a broken pipe (`systolicd ... | head`) is the normal
/// way for a consumer to hang up, so it exits 0; anything else is a real
/// I/O failure and exits 2 with a message.
fn write_line(out: &mut dyn Write, line: &dyn std::fmt::Display) {
    if let Err(e) = writeln!(out, "{line}") {
        exit_for_stdout_error(&e);
    }
}

/// Flushes buffered output with the same error policy as [`write_line`].
fn flush_out(out: &mut dyn Write) {
    if let Err(e) = out.flush() {
        exit_for_stdout_error(&e);
    }
}

fn exit_for_stdout_error(e: &std::io::Error) -> ! {
    if e.kind() == std::io::ErrorKind::BrokenPipe {
        // The consumer stopped reading; finishing early is not an error.
        std::process::exit(0);
    }
    eprintln!("systolicd: cannot write to stdout: {e}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => gen_main(&args[1..]),
        Some("serve") => serve_main(&args[1..]),
        _ => usage(),
    }
}

fn gen_main(args: &[String]) {
    let mut count = None;
    let mut seed = 42u64;
    let mut config = TrafficConfig::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--count" => count = Some(parse_flag_value(&mut iter, "--count")),
            "--seed" => seed = parse_flag_value(&mut iter, "--seed") as u64,
            "--hot-percent" => {
                config.hot_percent = parse_flag_value(&mut iter, "--hot-percent").min(100) as u32;
            }
            _ => usage(),
        }
    }
    let Some(count) = count else { usage() };

    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for (i, item) in traffic(&config, seed, count).iter().enumerate() {
        let id = format!("{}#{i}", item.name);
        write_line(&mut out, &traffic_to_json(&id, item));
    }
    flush_out(&mut out);
}

fn serve_main(args: &[String]) {
    let mut config = ServiceConfig::default();
    let mut cache = CacheConfig::default();
    let mut summary = false;
    let mut summary_json = false;
    let mut metrics_file = None;
    let mut trace_file = None;
    let mut input_path = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--workers" => config.workers = parse_flag_value(&mut iter, "--workers").max(1),
            "--shards" => cache.shards = parse_flag_value(&mut iter, "--shards").max(1),
            "--capacity" => {
                cache.capacity_per_shard = parse_flag_value(&mut iter, "--capacity").max(1);
            }
            "--queue-depth" => {
                config.queue_depth = parse_flag_value(&mut iter, "--queue-depth").max(1);
            }
            "--verify" => config.verify = true,
            "--verify-threads" => {
                config.verify_threads = parse_flag_value(&mut iter, "--verify-threads");
            }
            "--arena-cache-cap" => {
                // 0 means "size automatically from observed topologies".
                config.arena_cache_capacity = parse_flag_value(&mut iter, "--arena-cache-cap");
            }
            "--arena-mem-budget" => {
                config.arena_mem_budget =
                    Some(parse_flag_value(&mut iter, "--arena-mem-budget").max(1));
            }
            "--session-cap" => {
                config.session_capacity = parse_flag_value(&mut iter, "--session-cap").max(1);
            }
            "--incremental-fallback-ratio" => {
                config.incremental_fallback_ratio =
                    parse_flag_ratio(&mut iter, "--incremental-fallback-ratio");
            }
            "--summary" => summary = true,
            "--summary-json" => summary_json = true,
            "--metrics-file" => {
                metrics_file = Some(parse_flag_path(&mut iter, "--metrics-file"));
            }
            "--trace-file" => trace_file = Some(parse_flag_path(&mut iter, "--trace-file")),
            path if !path.starts_with('-') && input_path.is_none() => {
                input_path = Some(path.to_owned());
            }
            _ => usage(),
        }
    }
    config.cache = cache;

    let reader: Box<dyn Read> = match &input_path {
        Some(path) => Box::new(std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("systolicd: cannot open {path}: {e}");
            std::process::exit(2);
        })),
        None => Box::new(std::io::stdin()),
    };

    let service = AnalysisService::new(config);
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let started = Instant::now();
    let mut served = 0u64;
    let mut invalid = 0u64;

    // Stream responses in request order while keeping at most
    // `inflight_limit` tickets outstanding: the submission queue provides
    // the backpressure, this window just bounds reply buffering.
    let inflight_limit = config.workers * 2 + config.queue_depth;
    let mut inflight: std::collections::VecDeque<Ticket> = std::collections::VecDeque::new();
    let drain_one = |inflight: &mut std::collections::VecDeque<Ticket>, out: &mut dyn Write| {
        if let Some(ticket) = inflight.pop_front() {
            let response = ticket.wait();
            write_line(out, &response_to_json(&response));
        }
    };

    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.unwrap_or_else(|e| {
            eprintln!("systolicd: read error: {e}");
            std::process::exit(2);
        });
        if line.trim().is_empty() {
            continue;
        }
        let line_number = i + 1;
        match parse_line(&line, line_number) {
            Ok(WireRequest::Analysis(request)) => {
                if inflight.len() >= inflight_limit {
                    drain_one(&mut inflight, &mut out);
                }
                inflight.push_back(service.submit(*request));
                served += 1;
            }
            Ok(WireRequest::Metrics) => {
                // Flush in-flight responses first so the dump reflects
                // every request submitted before it (and output stays in
                // input order).
                while !inflight.is_empty() {
                    drain_one(&mut inflight, &mut out);
                }
                write_line(&mut out, &metrics_to_json(&service.registry_snapshot()));
            }
            Ok(WireRequest::Edit(command)) => {
                // Edits chain on earlier responses' fingerprints, so every
                // prior submission must land (seeding its session inputs)
                // before the edit runs; flushing also keeps output in
                // input order.
                while !inflight.is_empty() {
                    drain_one(&mut inflight, &mut out);
                }
                let line =
                    match service.apply_edit(command.name.clone(), command.base, &command.ops) {
                        Ok(edit) => edit_response_to_json(&edit),
                        Err(error) => edit_rejected_to_json(&command.name, command.base, &error),
                    };
                write_line(&mut out, &line);
                served += 1;
            }
            Err(error) => {
                // Flush pending responses first so output stays in input
                // order, then answer the malformed line inline.
                while !inflight.is_empty() {
                    drain_one(&mut inflight, &mut out);
                }
                write_line(&mut out, &invalid_to_json(line_number, &error));
                invalid += 1;
            }
        }
    }
    while !inflight.is_empty() {
        drain_one(&mut inflight, &mut out);
    }
    flush_out(&mut out);

    let elapsed = started.elapsed();
    let secs = elapsed.as_secs_f64();
    let throughput = if secs > 0.0 {
        served as f64 / secs
    } else {
        0.0
    };

    if summary {
        let stats = service.stats();
        let mut table = stats.table();
        table.row(["wall time (s)", &format!("{secs:.3}")]);
        table.row(["throughput (req/s)", &format!("{throughput:.0}")]);
        table.row(["invalid lines", &invalid.to_string()]);
        eprintln!("{}", table.to_text());
    }

    if summary_json {
        let stats = service.stats();
        let snapshot = service.registry_snapshot();
        let arenas = stats.arena_cache;
        let mut members = vec![
            ("requests".to_owned(), Json::Num(stats.requests as f64)),
            ("invalid_lines".to_owned(), Json::Num(invalid as f64)),
            ("wall_seconds".to_owned(), Json::Num(secs)),
            ("throughput_per_sec".to_owned(), Json::Num(throughput)),
            ("cache_hits".to_owned(), Json::Num(stats.cache.hits as f64)),
            (
                "cache_misses".to_owned(),
                Json::Num(stats.cache.misses as f64),
            ),
            (
                "cache_hit_rate".to_owned(),
                Json::Num(stats.cache.hit_rate()),
            ),
            ("latency_mean_us".to_owned(), Json::Num(stats.mean_micros)),
            ("latency_p50_us".to_owned(), Json::Num(stats.p50_micros)),
            ("latency_p99_us".to_owned(), Json::Num(stats.p99_micros)),
            (
                "latency_max_us".to_owned(),
                Json::Num(stats.max_micros as f64),
            ),
            ("arena_hits".to_owned(), Json::Num(arenas.hits as f64)),
            ("arena_misses".to_owned(), Json::Num(arenas.misses as f64)),
            (
                "arena_evictions".to_owned(),
                Json::Num(arenas.evictions as f64),
            ),
            (
                "hw_threads".to_owned(),
                Json::Num(snapshot.gauge_value(systolic_obs::names::HW_THREADS, &[]) as f64),
            ),
        ];
        if let Some(scheduler) = &stats.scheduler {
            members.push((
                "scheduler_fanouts".to_owned(),
                Json::Num(scheduler.fanouts as f64),
            ));
            members.push((
                "scheduler_items".to_owned(),
                Json::Num(scheduler.items as f64),
            ));
        }
        eprintln!("{}", Json::Obj(members));
    }

    if let Some(path) = &metrics_file {
        let exposition = service.registry_snapshot().render_prometheus();
        std::fs::write(path, exposition).unwrap_or_else(|e| {
            eprintln!("systolicd: cannot write {path}: {e}");
            std::process::exit(2);
        });
    }

    if let Some(path) = &trace_file {
        let spans = service.obs().tracer().snapshot();
        let dropped = service.obs().tracer().dropped();
        let mut log = String::new();
        for span in &spans {
            log.push_str(&span.to_json_line());
            log.push('\n');
        }
        std::fs::write(path, log).unwrap_or_else(|e| {
            eprintln!("systolicd: cannot write {path}: {e}");
            std::process::exit(2);
        });
        if dropped > 0 {
            eprintln!("systolicd: trace ring dropped {dropped} oldest spans (bounded capacity)");
        }
    }

    std::process::exit(i32::from(invalid > 0));
}
