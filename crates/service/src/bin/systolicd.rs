//! `systolicd` — the JSONL front end of the analysis service.
//!
//! ```text
//! systolicd gen   --count 1000 [--seed 42] [--hot-percent 50]
//! systolicd serve [FILE] [--workers 4] [--shards 8] [--capacity 256]
//!                 [--queue-depth 64] [--verify] [--verify-threads N]
//!                 [--arena-cache-cap N] [--arena-mem-budget BYTES]
//!                 [--session-cap N] [--incremental-fallback-ratio R]
//!                 [--snapshot-load PATH] [--snapshot-save PATH]
//!                 [--snapshot-every N]
//!                 [--summary] [--summary-json]
//!                 [--metrics-file PATH] [--trace-file PATH]
//! ```
//!
//! All flags are parsed and validated by [`systolic_service::daemon`];
//! this binary is the I/O loop. `gen` writes a deterministic stream of
//! mixed workload requests (one JSON object per line) to stdout. `serve`
//! reads request lines from FILE (or stdin), drives them through the
//! service with bounded backpressure, and streams one JSON response per
//! line to stdout in request order; `--verify` chases every certified
//! miss with a simulator replay, and `--verify-threads N` coalesces those
//! chases into batched fan-outs through a cross-topology verify scheduler
//! with `N` workers instead of running them inline in the analysis
//! workers. Warm-arena caches (inline per worker, or per scheduler
//! worker) are sized by `--arena-cache-cap N` (arenas per cache; `0`
//! sizes automatically from the number of distinct topologies observed)
//! or `--arena-mem-budget BYTES` (approximate bytes per cache, which
//! takes precedence); `--summary` prints a throughput/latency/cache table
//! — including arena-cache counters, scheduler fan-out depths, and a
//! per-topology verified/blocked breakdown — to stderr.
//!
//! Incremental edits: a request line `{"op": "edit", "base": "0x...",
//! "ops": [...]}` reanalyzes an earlier program (named by its response
//! `fingerprint`) through a warm dirty-tracked session instead of from
//! scratch; `--session-cap N` bounds the warm-session table (default 64,
//! LRU eviction) and `--incremental-fallback-ratio R` sets the dirty-cell
//! fraction above which an edit falls back to a from-scratch analysis
//! (default 0.5). Edit responses carry `cache: "incremental"` and a
//! `reuse` object; the summary table gains `incremental *` rows once any
//! edit was served.
//!
//! Snapshot persistence: `--snapshot-load PATH` warms the plan cache from
//! a snapshot before the first request (a rejected load — missing file,
//! corrupt bytes, future format version — keeps serving cold, never
//! partially warmed); `--snapshot-save PATH` writes a snapshot when the
//! stream ends, `--snapshot-every N` additionally autosaves after every
//! `N` served requests, and a request line `{"op": "snapshot"}` saves
//! mid-stream after flushing every prior request and answers with a
//! `status: "snapshot"` report. Warmed cache hits respond with
//! `cache: "warm"` and the summary table gains `snapshot *` rows.
//!
//! Observability: `--summary-json` prints the summary as one JSON object
//! to stderr; `--metrics-file PATH` writes the full metrics registry as a
//! Prometheus text exposition on exit; `--trace-file PATH` writes the span
//! log (one JSON object per finished span, `trace` ids matching the
//! `trace` field of wire responses) as JSONL on exit. A request line
//! `{"op": "metrics"}` dumps the registry as one JSON response mid-stream
//! after flushing every prior request. Exit
//! status is 0 when every line was a well-formed request (rejected
//! analyses still count as served), 2 on usage errors, 1 when some lines
//! were malformed.
//!
//! A full round trip:
//!
//! ```text
//! systolicd gen --count 1000 --seed 7 > requests.jsonl
//! systolicd serve requests.jsonl --workers 8 --summary \
//!     --snapshot-save warm.snap > responses.jsonl
//! systolicd serve requests.jsonl --snapshot-load warm.snap --summary \
//!     > responses2.jsonl   # instant warm cache, responses say "warm"
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;
use std::time::Instant;

use systolic_service::daemon::{DaemonCommand, GenOptions, OptionsError, ServeOptions, USAGE};
use systolic_service::wire::{parse_line, WireRequest, WireResponse};
use systolic_service::{AnalysisService, Json, Ticket};
use systolic_workloads::traffic;

/// Writes one output line, turning stdout failures into process exits
/// instead of panics: a broken pipe (`systolicd ... | head`) is the normal
/// way for a consumer to hang up, so it exits 0; anything else is a real
/// I/O failure and exits 2 with a message.
fn write_line(out: &mut dyn Write, line: &dyn std::fmt::Display) {
    if let Err(e) = writeln!(out, "{line}") {
        exit_for_stdout_error(&e);
    }
}

/// Flushes buffered output with the same error policy as [`write_line`].
fn flush_out(out: &mut dyn Write) {
    if let Err(e) = out.flush() {
        exit_for_stdout_error(&e);
    }
}

fn exit_for_stdout_error(e: &std::io::Error) -> ! {
    if e.kind() == std::io::ErrorKind::BrokenPipe {
        // The consumer stopped reading; finishing early is not an error.
        std::process::exit(0);
    }
    eprintln!("systolicd: cannot write to stdout: {e}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match DaemonCommand::parse(&args) {
        Ok(DaemonCommand::Gen(options)) => gen_main(&options),
        Ok(DaemonCommand::Serve(options)) => serve_main(&options),
        Err(OptionsError::Usage) => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
        Err(error) => {
            eprintln!("systolicd: {error}");
            std::process::exit(2);
        }
    }
}

fn gen_main(options: &GenOptions) {
    let config = options.traffic_config();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for (i, item) in traffic(&config, options.seed, options.count)
        .iter()
        .enumerate()
    {
        let id = format!("{}#{i}", item.name);
        write_line(&mut out, &WireResponse::Traffic { id: &id, item }.to_json());
    }
    flush_out(&mut out);
}

fn serve_main(options: &ServeOptions) {
    let config = options.service;

    let reader: Box<dyn Read> = match &options.input_path {
        Some(path) => Box::new(std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("systolicd: cannot open {path}: {e}");
            std::process::exit(2);
        })),
        None => Box::new(std::io::stdin()),
    };

    let service = AnalysisService::new(config);

    if let Some(path) = &options.snapshot_load {
        // A rejected load never partially applies: the daemon keeps
        // serving, cold, exactly as if no snapshot had been offered.
        match service.load_snapshot(Path::new(path)) {
            Ok(report) => eprintln!(
                "systolicd: snapshot {path} warmed {} plans, {} seeds \
                 ({} dropped, {} bytes, {} us)",
                report.plans, report.seeds, report.dropped, report.bytes, report.micros
            ),
            Err(error) => {
                eprintln!("systolicd: snapshot load rejected ({error}); serving cold");
            }
        }
    }

    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let started = Instant::now();
    let mut served = 0u64;
    let mut invalid = 0u64;
    let mut since_autosave = 0usize;

    // Stream responses in request order while keeping at most
    // `inflight_limit` tickets outstanding: the submission queue provides
    // the backpressure, this window just bounds reply buffering.
    let inflight_limit = config.workers * 2 + config.queue_depth;
    let mut inflight: std::collections::VecDeque<Ticket> = std::collections::VecDeque::new();
    let drain_one = |inflight: &mut std::collections::VecDeque<Ticket>, out: &mut dyn Write| {
        if let Some(ticket) = inflight.pop_front() {
            let response = ticket.wait();
            write_line(out, &WireResponse::Analysis(&response).to_json());
        }
    };
    let autosave = |service: &AnalysisService, since_autosave: &mut usize| {
        if options.snapshot_every == 0 {
            return;
        }
        *since_autosave += 1;
        if *since_autosave < options.snapshot_every {
            return;
        }
        *since_autosave = 0;
        if let Some(path) = &options.snapshot_save {
            // Autosave is best-effort persistence; a failed write is
            // reported but never interrupts serving.
            if let Err(error) = service.save_snapshot(Path::new(path)) {
                eprintln!("systolicd: snapshot autosave to {path} failed: {error}");
            }
        }
    };

    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.unwrap_or_else(|e| {
            eprintln!("systolicd: read error: {e}");
            std::process::exit(2);
        });
        if line.trim().is_empty() {
            continue;
        }
        let line_number = i + 1;
        match parse_line(&line, line_number) {
            Ok(WireRequest::Analysis(request)) => {
                if inflight.len() >= inflight_limit {
                    drain_one(&mut inflight, &mut out);
                }
                inflight.push_back(service.submit(*request));
                served += 1;
                autosave(&service, &mut since_autosave);
            }
            Ok(WireRequest::Metrics) => {
                // Flush in-flight responses first so the dump reflects
                // every request submitted before it (and output stays in
                // input order).
                while !inflight.is_empty() {
                    drain_one(&mut inflight, &mut out);
                }
                let snapshot = service.registry_snapshot();
                write_line(&mut out, &WireResponse::Metrics(&snapshot).to_json());
            }
            Ok(WireRequest::Edit(command)) => {
                // Edits chain on earlier responses' fingerprints, so every
                // prior submission must land (seeding its session inputs)
                // before the edit runs; flushing also keeps output in
                // input order.
                while !inflight.is_empty() {
                    drain_one(&mut inflight, &mut out);
                }
                let line =
                    match service.apply_edit(command.name.clone(), command.base, &command.ops) {
                        Ok(edit) => WireResponse::Edit(&edit).to_json(),
                        Err(error) => WireResponse::EditRejected {
                            name: &command.name,
                            base: command.base,
                            error: &error,
                        }
                        .to_json(),
                    };
                write_line(&mut out, &line);
                served += 1;
                autosave(&service, &mut since_autosave);
            }
            Ok(WireRequest::Snapshot(id)) => {
                // Flush so the snapshot covers every request submitted
                // before it; output also stays in input order.
                while !inflight.is_empty() {
                    drain_one(&mut inflight, &mut out);
                }
                let line = match &options.snapshot_save {
                    Some(path) => match service.save_snapshot(Path::new(path)) {
                        Ok(report) => WireResponse::Snapshot { name: &id, report }.to_json(),
                        Err(error) => WireResponse::SnapshotRejected {
                            name: &id,
                            error: &error.to_string(),
                        }
                        .to_json(),
                    },
                    None => WireResponse::SnapshotRejected {
                        name: &id,
                        error: "no --snapshot-save path configured",
                    }
                    .to_json(),
                };
                write_line(&mut out, &line);
                served += 1;
            }
            Err(error) => {
                // Flush pending responses first so output stays in input
                // order, then answer the malformed line inline.
                while !inflight.is_empty() {
                    drain_one(&mut inflight, &mut out);
                }
                write_line(
                    &mut out,
                    &WireResponse::Invalid {
                        line_number,
                        error: &error,
                    }
                    .to_json(),
                );
                invalid += 1;
            }
        }
    }
    while !inflight.is_empty() {
        drain_one(&mut inflight, &mut out);
    }
    flush_out(&mut out);

    if let Some(path) = &options.snapshot_save {
        match service.save_snapshot(Path::new(path)) {
            Ok(report) => eprintln!(
                "systolicd: snapshot saved to {path} ({} plans, {} seeds, {} bytes)",
                report.plans, report.seeds, report.bytes
            ),
            Err(error) => {
                eprintln!("systolicd: cannot write snapshot {path}: {error}");
                std::process::exit(2);
            }
        }
    }

    let elapsed = started.elapsed();
    let secs = elapsed.as_secs_f64();
    let throughput = if secs > 0.0 {
        served as f64 / secs
    } else {
        0.0
    };

    if options.summary {
        let stats = service.stats();
        let mut table = stats.table();
        table.row(["wall time (s)", &format!("{secs:.3}")]);
        table.row(["throughput (req/s)", &format!("{throughput:.0}")]);
        table.row(["invalid lines", &invalid.to_string()]);
        eprintln!("{}", table.to_text());
    }

    if options.summary_json {
        let stats = service.stats();
        let snapshot = service.registry_snapshot();
        let arenas = stats.arena_cache;
        let mut members = vec![
            ("requests".to_owned(), Json::Num(stats.requests as f64)),
            ("invalid_lines".to_owned(), Json::Num(invalid as f64)),
            ("wall_seconds".to_owned(), Json::Num(secs)),
            ("throughput_per_sec".to_owned(), Json::Num(throughput)),
            ("cache_hits".to_owned(), Json::Num(stats.cache.hits as f64)),
            (
                "cache_misses".to_owned(),
                Json::Num(stats.cache.misses as f64),
            ),
            (
                "cache_hit_rate".to_owned(),
                Json::Num(stats.cache.hit_rate()),
            ),
            ("latency_mean_us".to_owned(), Json::Num(stats.mean_micros)),
            ("latency_p50_us".to_owned(), Json::Num(stats.p50_micros)),
            ("latency_p99_us".to_owned(), Json::Num(stats.p99_micros)),
            (
                "latency_max_us".to_owned(),
                Json::Num(stats.max_micros as f64),
            ),
            ("arena_hits".to_owned(), Json::Num(arenas.hits as f64)),
            ("arena_misses".to_owned(), Json::Num(arenas.misses as f64)),
            (
                "arena_evictions".to_owned(),
                Json::Num(arenas.evictions as f64),
            ),
            (
                "hw_threads".to_owned(),
                Json::Num(snapshot.gauge_value(systolic_obs::names::HW_THREADS, &[]) as f64),
            ),
        ];
        if let Some(scheduler) = &stats.scheduler {
            members.push((
                "scheduler_fanouts".to_owned(),
                Json::Num(scheduler.fanouts as f64),
            ));
            members.push((
                "scheduler_items".to_owned(),
                Json::Num(scheduler.items as f64),
            ));
        }
        let snap = stats.snapshot;
        if snap.loads + snap.saves + snap.load_rejected > 0 {
            members.push(("snapshot_loads".to_owned(), Json::Num(snap.loads as f64)));
            members.push((
                "snapshot_plans_restored".to_owned(),
                Json::Num(snap.loaded_plans as f64),
            ));
            members.push((
                "snapshot_seeds_restored".to_owned(),
                Json::Num(snap.loaded_seeds as f64),
            ));
            members.push((
                "snapshot_dropped".to_owned(),
                Json::Num(snap.dropped as f64),
            ));
            members.push((
                "snapshot_loads_rejected".to_owned(),
                Json::Num(snap.load_rejected as f64),
            ));
            members.push(("snapshot_saves".to_owned(), Json::Num(snap.saves as f64)));
            members.push((
                "snapshot_warm_hits".to_owned(),
                Json::Num(snap.warm_hits as f64),
            ));
        }
        eprintln!("{}", Json::Obj(members));
    }

    if let Some(path) = &options.metrics_file {
        let exposition = service.registry_snapshot().render_prometheus();
        std::fs::write(path, exposition).unwrap_or_else(|e| {
            eprintln!("systolicd: cannot write {path}: {e}");
            std::process::exit(2);
        });
    }

    if let Some(path) = &options.trace_file {
        let spans = service.obs().tracer().snapshot();
        let dropped = service.obs().tracer().dropped();
        let mut log = String::new();
        for span in &spans {
            log.push_str(&span.to_json_line());
            log.push('\n');
        }
        std::fs::write(path, log).unwrap_or_else(|e| {
            eprintln!("systolicd: cannot write {path}: {e}");
            std::process::exit(2);
        });
        if dropped > 0 {
            eprintln!("systolicd: trace ring dropped {dropped} oldest spans (bounded capacity)");
        }
    }

    std::process::exit(i32::from(invalid > 0));
}
