//! Thin adapter: the verification-arena LRU now lives in `systolic_sim`.
//!
//! The LRU of warm [`SimArena`](systolic_sim::SimArena)s started here as
//! a service-private cache and was generalized into the simulator crate
//! when the cross-topology
//! [`VerifyScheduler`](systolic_sim::VerifyScheduler) landed — scheduler
//! workers and service threads now share one implementation, including
//! the [`ArenaBudget`](systolic_sim::ArenaBudget) sizing policies (fixed
//! capacity, observed-cardinality auto sizing, or a byte budget against
//! [`SimArena::approx_bytes`](systolic_sim::SimArena::approx_bytes)).
//! This module re-exports the types under their old service paths so
//! existing callers keep compiling; new code should use them from
//! `systolic_sim` directly.

pub use systolic_sim::{ArenaBudget, ArenaLookup, ArenaLru};
