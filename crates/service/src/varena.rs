//! A small per-worker LRU of verification arenas, keyed by compiled
//! topology.
//!
//! The verification chase replays a certified plan through a
//! [`SimArena`]. Arenas are cheap to *reuse* (state resets in place) but
//! expensive to *build* (queue pools for every interval of the fabric),
//! and an arena is only valid for the topology it was built over. A
//! worker that holds just the **last** topology's arena thrashes as soon
//! as traffic interleaves two topologies — A, B, A, B rebuilds on every
//! request. [`ArenaLru`] keeps the last few topologies' arenas warm
//! instead, the same recency idiom as the sharded plan cache
//! ([`crate::ShardedCache`]) shrunk to a handful of entries with no
//! locking: each worker owns its LRU outright.

use std::sync::Arc;

use systolic_core::CompiledTopology;
use systolic_sim::{SimArena, SimConfig};

/// One resident arena: the compiled topology's fingerprint and the
/// [`SimConfig`] it was built under (both must match for reuse — an
/// arena's queue shapes and cycle limits are baked in at construction),
/// a recency tick, and the arena itself.
#[derive(Debug)]
struct Entry {
    fingerprint: u128,
    sim: SimConfig,
    last_used: u64,
    arena: SimArena,
}

/// The result of an [`ArenaLru::get_or_build`] lookup: the arena to
/// replay through, plus what the lookup did (for cache counters).
#[derive(Debug)]
pub struct ArenaLookup<'a> {
    /// The arena for the requested topology, reset-ready.
    pub arena: &'a mut SimArena,
    /// `true` when the arena was already resident (no rebuild).
    pub hit: bool,
    /// `true` when admitting this arena displaced the least-recently-used
    /// resident one.
    pub evicted: bool,
}

/// A tiny, lock-free-by-ownership LRU of [`SimArena`]s keyed by
/// [`CompiledTopology::fingerprint`]. Each service worker (or dedicated
/// verifier thread) owns one, so topology-interleaved traffic keeps the
/// last `capacity` fabrics' arenas warm instead of rebuilding per
/// request.
///
/// # Examples
///
/// ```
/// use systolic_core::{AnalysisConfig, CompiledTopology};
/// use systolic_model::Topology;
/// use systolic_service::ArenaLru;
/// use systolic_sim::SimConfig;
///
/// let mut lru = ArenaLru::new(2);
/// let config = AnalysisConfig::default();
/// let a = CompiledTopology::compile(&Topology::linear(2), &config).into_shared();
/// let b = CompiledTopology::compile(&Topology::ring(4), &config).into_shared();
///
/// assert!(!lru.get_or_build(&a, SimConfig::default()).hit);
/// assert!(!lru.get_or_build(&b, SimConfig::default()).hit);
/// // Interleaved reuse: both stay warm within the capacity.
/// assert!(lru.get_or_build(&a, SimConfig::default()).hit);
/// assert!(lru.get_or_build(&b, SimConfig::default()).hit);
/// ```
#[derive(Debug)]
pub struct ArenaLru {
    capacity: usize,
    tick: u64,
    entries: Vec<Entry>,
}

impl ArenaLru {
    /// An empty LRU holding at most `capacity` arenas (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ArenaLru {
            capacity: capacity.max(1),
            tick: 0,
            entries: Vec::new(),
        }
    }

    /// Arenas currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no arena is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity (≥ 1).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `true` if an arena for `fingerprint` is resident.
    #[must_use]
    pub fn contains(&self, fingerprint: u128) -> bool {
        self.entries.iter().any(|e| e.fingerprint == fingerprint)
    }

    /// The arena for `compiled` under `sim`: resident (a *hit*, recency
    /// bumped) or freshly built (a *miss*, evicting the
    /// least-recently-used entry when full). A resident arena is reused
    /// only when **both** the compiled topology and the [`SimConfig`]
    /// match — a same-topology entry built under a different `SimConfig`
    /// (say, latch instead of buffered queues) is discarded and rebuilt,
    /// never silently reused to replay under the wrong queue shapes.
    pub fn get_or_build(
        &mut self,
        compiled: &Arc<CompiledTopology>,
        sim: SimConfig,
    ) -> ArenaLookup<'_> {
        let fingerprint = compiled.fingerprint();
        self.tick += 1;
        if let Some(idx) = self
            .entries
            .iter()
            .position(|e| e.fingerprint == fingerprint)
        {
            if self.entries[idx].sim == sim {
                self.entries[idx].last_used = self.tick;
                return ArenaLookup {
                    arena: &mut self.entries[idx].arena,
                    hit: true,
                    evicted: false,
                };
            }
            // Same topology, different simulation parameters: the stale
            // arena is useless (and dangerous to reuse) — drop it and
            // fall through to the rebuild path below.
            self.entries.swap_remove(idx);
        }
        let mut evicted = false;
        if self.entries.len() >= self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("capacity >= 1, so a full LRU has entries");
            self.entries.swap_remove(lru);
            evicted = true;
        }
        self.entries.push(Entry {
            fingerprint,
            sim,
            last_used: self.tick,
            arena: SimArena::from_compiled(Arc::clone(compiled), sim),
        });
        let arena = &mut self.entries.last_mut().expect("just pushed").arena;
        ArenaLookup {
            arena,
            hit: false,
            evicted,
        }
    }

    /// Drops the arena for `fingerprint`, if resident. Used when a replay
    /// panicked mid-run: the arena's queue state may be poisoned, so the
    /// next request for that topology rebuilds instead of reusing it.
    /// Returns whether an entry was dropped.
    pub fn remove(&mut self, fingerprint: u128) -> bool {
        match self
            .entries
            .iter()
            .position(|e| e.fingerprint == fingerprint)
        {
            Some(idx) => {
                self.entries.swap_remove(idx);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_core::AnalysisConfig;
    use systolic_model::Topology;

    fn compiled(cells: u32) -> Arc<CompiledTopology> {
        CompiledTopology::compile(
            &Topology::linear(cells as usize),
            &AnalysisConfig::default(),
        )
        .into_shared()
    }

    #[test]
    fn miss_builds_then_hit_reuses() {
        let mut lru = ArenaLru::new(2);
        let a = compiled(2);
        let first = lru.get_or_build(&a, SimConfig::default());
        assert!(!first.hit && !first.evicted);
        let second = lru.get_or_build(&a, SimConfig::default());
        assert!(second.hit && !second.evicted);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = ArenaLru::new(2);
        let (a, b, c) = (compiled(2), compiled(3), compiled(4));
        lru.get_or_build(&a, SimConfig::default());
        lru.get_or_build(&b, SimConfig::default());
        // Touch `a` so `b` becomes the LRU entry.
        assert!(lru.get_or_build(&a, SimConfig::default()).hit);
        let admitted = lru.get_or_build(&c, SimConfig::default());
        assert!(!admitted.hit && admitted.evicted);
        assert_eq!(lru.len(), 2);
        assert!(
            lru.contains(a.fingerprint()),
            "recently used entry survives"
        );
        assert!(!lru.contains(b.fingerprint()), "LRU entry was evicted");
        assert!(lru.contains(c.fingerprint()));
    }

    #[test]
    fn interleaved_topologies_stay_warm_within_capacity() {
        // The single-arena worker cache this type replaces rebuilt on
        // every request of an A,B,A,B stream; the LRU hits from the
        // second round on.
        let mut lru = ArenaLru::new(4);
        let (a, b) = (compiled(2), compiled(3));
        let mut hits = 0;
        for _ in 0..8 {
            hits += usize::from(lru.get_or_build(&a, SimConfig::default()).hit);
            hits += usize::from(lru.get_or_build(&b, SimConfig::default()).hit);
        }
        assert_eq!(hits, 14, "everything after the two cold builds hits");
    }

    #[test]
    fn remove_forces_rebuild_after_poisoning() {
        // The reuse-after-panic contract: a panicked replay drops its
        // arena; the next request rebuilds (a miss), later ones hit again.
        let mut lru = ArenaLru::new(2);
        let a = compiled(2);
        lru.get_or_build(&a, SimConfig::default());
        assert!(lru.remove(a.fingerprint()));
        assert!(lru.is_empty());
        assert!(!lru.remove(a.fingerprint()), "double remove is a no-op");
        let rebuilt = lru.get_or_build(&a, SimConfig::default());
        assert!(!rebuilt.hit, "poisoned arena must not be reused");
        assert!(lru.get_or_build(&a, SimConfig::default()).hit);
    }

    #[test]
    fn different_sim_config_rebuilds_instead_of_reusing() {
        // Same topology, different queue shapes: reusing the buffered
        // arena for a latch-queue replay would report wrong
        // verified/blocked outcomes, so the lookup must miss and rebuild.
        let mut lru = ArenaLru::new(2);
        let a = compiled(2);
        let buffered = SimConfig::default();
        let latch = SimConfig {
            queue: systolic_sim::QueueConfig {
                capacity: 0,
                extension: false,
            },
            ..Default::default()
        };
        assert!(!lru.get_or_build(&a, buffered).hit);
        let swapped = lru.get_or_build(&a, latch);
        assert!(
            !swapped.hit,
            "a config change must not reuse the stale arena"
        );
        assert!(
            !swapped.evicted,
            "the stale entry is replaced, not LRU-evicted"
        );
        assert_eq!(lru.len(), 1, "one arena per (topology, config) pair");
        assert!(lru.get_or_build(&a, latch).hit);
        assert!(
            !lru.get_or_build(&a, buffered).hit,
            "and back again rebuilds"
        );
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut lru = ArenaLru::new(0);
        assert_eq!(lru.capacity(), 1);
        let (a, b) = (compiled(2), compiled(3));
        lru.get_or_build(&a, SimConfig::default());
        let swapped = lru.get_or_build(&b, SimConfig::default());
        assert!(!swapped.hit && swapped.evicted);
        assert_eq!(lru.len(), 1);
    }
}
