//! The JSONL wire format of the `systolicd` binary.
//!
//! One request per line:
//!
//! ```json
//! {"id": "r1", "program": "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\n",
//!  "topology": "linear:2", "queues": 1, "lookahead": "none"}
//! ```
//!
//! * `id` — optional string echoed in the response (defaults to the line
//!   number);
//! * `program` — required, the [`parse_program`] text format;
//! * `topology` — required, a [`Topology::from_spec`] spec string
//!   (`linear:N`, `ring:N`, `mesh:RxC`, `graph:N:a-b,...`);
//! * `queues` — optional hardware queues per interval (default 1);
//! * `lookahead` — optional: `"none"` (default), `"unbounded"`, an integer
//!   `n` (per-queue capacity `n`), or an array of per-message budgets
//!   (integers, `null` = unbounded).
//!
//! One response per line, e.g.:
//!
//! ```json
//! {"id": "r1", "status": "certified", "cache": "miss", "classification": "deadlock-free",
//!  "labeling": "section6", "labels": {"A": "1"}, "max_queues_per_interval": 1,
//!  "analysis_micros": 120, "micros": 130, "fingerprint": "0x..."}
//! ```
//!
//! `status` is `certified` or `rejected` (with `error` holding the
//! analysis error); malformed request lines are answered with `status:
//! "invalid"` and the parse error. Every response also carries `trace`,
//! the request's trace id — the span events in a `--trace-file` JSONL log
//! carry the same id, so responses join against their span trees.
//!
//! A control line `{"op": "metrics"}` (alias `"stats"`) is recognized by
//! [`parse_line`] and answered with one `status: "metrics"` object
//! dumping the whole metrics registry. A control line `{"op":
//! "snapshot"}` persists the daemon's warm state to its configured
//! `--snapshot-save` path and answers with a `status: "snapshot"` object
//! (`plans`, `seeds`, `bytes`, `micros`), or `status: "rejected"` with
//! `error_kind: "snapshot"` when no save path is configured. Every
//! response shape is rendered by the one [`WireResponse::to_json`] entry
//! point.
//!
//! An edit line reanalyzes a previously submitted program incrementally
//! (dirty-tracked stage reuse instead of a from-scratch run):
//!
//! ```json
//! {"op": "edit", "id": "e1", "base": "0x00f3...",
//!  "ops": [{"edit": "append", "cell": "c0", "op": "W(A)"},
//!          {"edit": "remove_tail", "cell": "c1"},
//!          {"edit": "add_link", "a": "c0", "b": "c5"}]}
//! ```
//!
//! `base` is the `fingerprint` of an earlier response on this connection
//! (full submit or previous edit); `ops` entries are `append` (push
//! `"W(X)"`/`"R(X)"` onto a cell's program), `remove_tail` (pop a cell's
//! last op), and `add_link`/`remove_link` (graph topologies only). The
//! response is a normal analysis response with `cache: "incremental"`
//! plus a `base` echo and a `reuse` object (dirty cells, reused stages,
//! fallback reason); its `fingerprint` is the new base for chained edits.
//! Unknown bases and invalid batches answer `status: "rejected"` with
//! `error_kind: "edit"` and leave the base session intact.
//!
//! Rejected (unsafe) responses — and certified responses with warnings —
//! carry a `diagnostics` array of structured findings:
//!
//! ```json
//! {"id": "d", "status": "rejected", "error_kind": "deadlocked", "...": "...",
//!  "diagnostics": [{"code": "E-DEADLOCK", "severity": "error",
//!                   "message": "program is deadlocked: ...",
//!                   "messages": [0, 1], "cells": [0, 1]}]}
//! ```
//!
//! `code` is a stable machine-readable
//! [`DiagnosticCode`](systolic_core::DiagnosticCode) string; `messages` and
//! `cells` are the offending message/cell ids (declaration order indexes),
//! present only when non-empty.

use systolic_core::{codec, Diagnostic, Lookahead, LookaheadLimits};
use systolic_model::{parse_program, program_to_text, ModelError, Topology};
use systolic_obs::RegistrySnapshot;
use systolic_workloads::TrafficItem;

use crate::{
    AnalysisRequest, AnalysisResponse, CacheProvenance, EditRequestError, EditResponse, Json,
    JsonError, NamedEditOp, ServiceError, SnapshotReport,
};

/// Why a request line could not become an [`AnalysisRequest`].
#[derive(Clone, PartialEq, Debug)]
pub enum WireError {
    /// The line is not valid JSON.
    Json(JsonError),
    /// The embedded program or topology failed to parse/validate.
    Model(ModelError),
    /// A field is missing or has the wrong shape.
    Field(String),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Json(e) => write!(f, "{e}"),
            WireError::Model(e) => write!(f, "{e}"),
            WireError::Field(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<JsonError> for WireError {
    fn from(e: JsonError) -> Self {
        WireError::Json(e)
    }
}

impl From<ModelError> for WireError {
    fn from(e: ModelError) -> Self {
        WireError::Model(e)
    }
}

/// Largest per-queue capacity / per-message budget a wire request may ask
/// for. Bounds untrusted input well away from integer-overflow territory;
/// anything larger is indistinguishable from `"unbounded"` anyway.
const MAX_LOOKAHEAD: u64 = 1 << 20;

fn parse_lookahead(value: Option<&Json>) -> Result<Lookahead, WireError> {
    match value {
        None => Ok(Lookahead::Disabled),
        Some(Json::Str(s)) if s == "none" => Ok(Lookahead::Disabled),
        Some(Json::Str(s)) if s == "unbounded" => Ok(Lookahead::Unbounded),
        Some(n @ Json::Num(_)) => {
            let capacity = n.as_u64().filter(|&c| c <= MAX_LOOKAHEAD).ok_or_else(|| {
                WireError::Field(format!(
                    "lookahead must be an integer in 0..={MAX_LOOKAHEAD}"
                ))
            })?;
            Ok(Lookahead::PerQueueCapacity(capacity as usize))
        }
        Some(Json::Arr(items)) => {
            let table = items
                .iter()
                .map(|item| match item {
                    Json::Null => Ok(None),
                    n @ Json::Num(_) => n
                        .as_u64()
                        .filter(|&v| v <= MAX_LOOKAHEAD)
                        .map(|v| Some(v as usize))
                        .ok_or_else(|| {
                            WireError::Field(format!(
                                "lookahead entries must be null or integers in 0..={MAX_LOOKAHEAD}"
                            ))
                        }),
                    _ => Err(WireError::Field(
                        "lookahead entries must be integers or null".into(),
                    )),
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Lookahead::Explicit(LookaheadLimits::from_table(table)))
        }
        Some(_) => Err(WireError::Field(
            "lookahead must be \"none\", \"unbounded\", an integer or an array".into(),
        )),
    }
}

/// Parses one JSONL request line. `line_number` (1-based) provides the
/// default `id`.
///
/// # Errors
///
/// Returns [`WireError`] for malformed JSON, missing fields, or invalid
/// embedded program/topology text.
pub fn parse_request(line: &str, line_number: usize) -> Result<AnalysisRequest, WireError> {
    let value = Json::parse(line)?;
    if !matches!(value, Json::Obj(_)) {
        return Err(WireError::Field(
            "request line must be a JSON object".into(),
        ));
    }
    let id = match value.get("id") {
        None => format!("line-{line_number}"),
        Some(Json::Str(s)) => s.clone(),
        Some(_) => return Err(WireError::Field("`id` must be a string".into())),
    };
    let program_text = value
        .get("program")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::Field("`program` (string) is required".into()))?;
    let topology_spec = value
        .get("topology")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::Field("`topology` (string) is required".into()))?;
    let queues = match value.get("queues") {
        None => 1,
        Some(v) => v
            .as_u64()
            .filter(|&q| q >= 1)
            .ok_or_else(|| WireError::Field("`queues` must be a positive integer".into()))?
            as usize,
    };
    let mut request = AnalysisRequest::new(
        id,
        parse_program(program_text)?,
        Topology::from_spec(topology_spec)?,
    );
    request.config.queues_per_interval = queues;
    request.config.lookahead = parse_lookahead(value.get("lookahead"))?;
    if let Lookahead::Explicit(limits) = &request.config.lookahead {
        if limits.len() != request.program.num_messages() {
            return Err(WireError::Field(format!(
                "lookahead array has {} entries but the program declares {} messages",
                limits.len(),
                request.program.num_messages()
            )));
        }
    }
    Ok(request)
}

/// One `{"op": "edit"}` wire line, parsed: the base fingerprint to edit
/// plus the named edit batch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EditCommand {
    /// Response id (defaults to the line number).
    pub name: String,
    /// Fingerprint of the base request/edit, from an earlier response.
    pub base: u128,
    /// The edit batch, in application order.
    pub ops: Vec<NamedEditOp>,
}

/// One parsed JSONL line: an analysis request, or a control op.
#[derive(Debug)]
pub enum WireRequest {
    /// A regular analysis request ([`parse_request`]).
    Analysis(Box<AnalysisRequest>),
    /// `{"op": "metrics"}` (alias `"stats"`): dump the metrics registry
    /// as one JSON object on the response stream.
    Metrics,
    /// `{"op": "edit"}`: apply an edit batch to a warm session
    /// ([`crate::AnalysisService::apply_edit`]).
    Edit(Box<EditCommand>),
    /// `{"op": "snapshot"}`: persist the daemon's warm state to its
    /// configured `--snapshot-save` path. The string is the response id
    /// (defaults to the line number).
    Snapshot(String),
}

/// Parses one JSONL line, recognizing control ops (`{"op": "metrics"}`,
/// `{"op": "edit"}`, `{"op": "snapshot"}`) before falling back to
/// [`parse_request`].
///
/// # Errors
///
/// Returns [`WireError`] for malformed JSON, unknown ops, or invalid
/// analysis requests.
pub fn parse_line(line: &str, line_number: usize) -> Result<WireRequest, WireError> {
    let value = Json::parse(line)?;
    match value.get("op").and_then(Json::as_str) {
        Some("metrics" | "stats") => Ok(WireRequest::Metrics),
        Some("edit") => Ok(WireRequest::Edit(Box::new(parse_edit(
            &value,
            line_number,
        )?))),
        Some("snapshot") => {
            let name = match value.get("id") {
                None => format!("line-{line_number}"),
                Some(Json::Str(s)) => s.clone(),
                Some(_) => return Err(WireError::Field("`id` must be a string".into())),
            };
            Ok(WireRequest::Snapshot(name))
        }
        Some(other) => Err(WireError::Field(format!(
            "unknown op {other:?} (expected \"metrics\", \"stats\", \"edit\" or \"snapshot\")"
        ))),
        None => Ok(WireRequest::Analysis(Box::new(parse_request(
            line,
            line_number,
        )?))),
    }
}

/// Parses the `base` fingerprint field: a hex string with optional `0x`
/// prefix, exactly as responses render it (`{:#034x}`).
fn parse_base(value: Option<&Json>) -> Result<u128, WireError> {
    let text = value
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::Field("`base` (fingerprint hex string) is required".into()))?;
    let digits = text.strip_prefix("0x").unwrap_or(text);
    u128::from_str_radix(digits, 16)
        .map_err(|_| WireError::Field(format!("`base` is not a fingerprint: {text:?}")))
}

/// Parses an `"W(X)"` / `"R(X)"` op string into (is_write, message name).
fn parse_op_string(text: &str) -> Result<(bool, String), WireError> {
    let inner = |s: &str, prefix: &str| {
        s.strip_prefix(prefix)
            .and_then(|rest| rest.strip_suffix(')'))
            .map(str::to_owned)
    };
    if let Some(message) = inner(text, "W(") {
        Ok((true, message))
    } else if let Some(message) = inner(text, "R(") {
        Ok((false, message))
    } else {
        Err(WireError::Field(format!(
            "`op` must look like \"W(A)\" or \"R(A)\", got {text:?}"
        )))
    }
}

fn parse_edit_op(item: &Json) -> Result<NamedEditOp, WireError> {
    let field = |name: &str| {
        item.get(name)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| WireError::Field(format!("edit op needs a string `{name}` field")))
    };
    match item.get("edit").and_then(Json::as_str) {
        Some("append") => {
            let (write, message) = parse_op_string(&field("op")?)?;
            Ok(NamedEditOp::Append {
                cell: field("cell")?,
                write,
                message,
            })
        }
        Some("remove_tail") => Ok(NamedEditOp::RemoveTail {
            cell: field("cell")?,
        }),
        Some("add_link") => Ok(NamedEditOp::AddLink {
            a: field("a")?,
            b: field("b")?,
        }),
        Some("remove_link") => Ok(NamedEditOp::RemoveLink {
            a: field("a")?,
            b: field("b")?,
        }),
        Some(other) => Err(WireError::Field(format!(
            "unknown edit {other:?} (expected \"append\", \"remove_tail\", \
             \"add_link\" or \"remove_link\")"
        ))),
        None => Err(WireError::Field(
            "each ops entry needs an `edit` discriminator string".into(),
        )),
    }
}

/// Parses one `{"op": "edit"}` line. `line_number` (1-based) provides the
/// default `id`.
///
/// # Errors
///
/// Returns [`WireError`] when `base` is missing/malformed or any `ops`
/// entry has the wrong shape.
pub fn parse_edit(value: &Json, line_number: usize) -> Result<EditCommand, WireError> {
    let name = match value.get("id") {
        None => format!("line-{line_number}"),
        Some(Json::Str(s)) => s.clone(),
        Some(_) => return Err(WireError::Field("`id` must be a string".into())),
    };
    let base = parse_base(value.get("base"))?;
    let Some(Json::Arr(items)) = value.get("ops") else {
        return Err(WireError::Field("`ops` (array) is required".into()));
    };
    let ops = items
        .iter()
        .map(parse_edit_op)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(EditCommand { name, base, ops })
}

/// One response line, unified over every shape the daemon writes.
///
/// [`WireResponse::to_json`] is the single rendering entry point for the
/// JSONL protocol: every response — analysis outcomes, edit results,
/// metrics dumps, parse errors, generated traffic, snapshot ops — goes
/// through it, so the daemon and tests cannot drift apart on field order
/// or vocabulary. The stable strings (`labeling`, diagnostic `code` /
/// `severity`, `error_kind`) come from [`systolic_core::codec`], the same
/// vocabulary the binary snapshot format encodes, so wire and disk cannot
/// drift either.
#[derive(Debug)]
pub enum WireResponse<'a> {
    /// A regular analysis response (certified or rejected).
    Analysis(&'a AnalysisResponse),
    /// An incremental edit outcome (`cache: "incremental"`, plus the
    /// `base` echo and `reuse` report).
    Edit(&'a EditResponse),
    /// A rejected edit request (unknown base, unknown names, invalid
    /// batch); the base session, if any, survives.
    EditRejected {
        /// Response id.
        name: &'a str,
        /// The base fingerprint the edit named.
        base: u128,
        /// Why the edit was rejected.
        error: &'a EditRequestError,
    },
    /// The metrics-registry dump answering `{"op": "metrics"}`.
    Metrics(&'a RegistrySnapshot),
    /// A malformed request line (`status: "invalid"`).
    Invalid {
        /// 1-based input line number (also the response id).
        line_number: usize,
        /// The parse failure.
        error: &'a WireError,
    },
    /// One generated traffic item (the `systolicd gen` output format —
    /// a request line, not a response, but rendered by the same entry
    /// point so the formats stay in one place).
    Traffic {
        /// Request id.
        id: &'a str,
        /// The generated request.
        item: &'a TrafficItem,
    },
    /// A completed `{"op": "snapshot"}` save (`status: "snapshot"`).
    Snapshot {
        /// Response id.
        name: &'a str,
        /// What the save wrote.
        report: SnapshotReport,
    },
    /// A failed `{"op": "snapshot"}` — no configured `--snapshot-save`
    /// path, or the save itself failed (`error_kind: "snapshot"`).
    SnapshotRejected {
        /// Response id.
        name: &'a str,
        /// Why the snapshot was rejected.
        error: &'a str,
    },
}

impl WireResponse<'_> {
    /// Renders this response as one JSONL object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            WireResponse::Analysis(response) => render_analysis(response),
            WireResponse::Edit(edit) => render_edit(edit),
            WireResponse::EditRejected { name, base, error } => {
                render_edit_rejected(name, *base, error)
            }
            WireResponse::Metrics(snapshot) => render_metrics(snapshot),
            WireResponse::Invalid { line_number, error } => render_invalid(*line_number, error),
            WireResponse::Traffic { id, item } => render_traffic(id, item),
            WireResponse::Snapshot { name, report } => Json::Obj(vec![
                ("id".to_owned(), Json::Str((*name).to_owned())),
                ("status".to_owned(), Json::Str("snapshot".to_owned())),
                ("plans".to_owned(), Json::Num(report.plans as f64)),
                ("seeds".to_owned(), Json::Num(report.seeds as f64)),
                ("bytes".to_owned(), Json::Num(report.bytes as f64)),
                ("micros".to_owned(), Json::Num(report.micros as f64)),
            ]),
            WireResponse::SnapshotRejected { name, error } => Json::Obj(vec![
                ("id".to_owned(), Json::Str((*name).to_owned())),
                ("status".to_owned(), Json::Str("rejected".to_owned())),
                ("error".to_owned(), Json::Str((*error).to_owned())),
                ("error_kind".to_owned(), Json::Str("snapshot".to_owned())),
            ]),
        }
    }
}

fn render_analysis(response: &AnalysisResponse) -> Json {
    let mut members = vec![
        ("id".to_owned(), Json::Str(response.name.clone())),
        (
            "status".to_owned(),
            Json::Str(
                if response.is_certified() {
                    "certified"
                } else {
                    "rejected"
                }
                .to_owned(),
            ),
        ),
        (
            "cache".to_owned(),
            Json::Str(
                match response.provenance {
                    CacheProvenance::Hit => "hit",
                    CacheProvenance::Miss => "miss",
                    CacheProvenance::Incremental => "incremental",
                    CacheProvenance::Warm => "warm",
                }
                .to_owned(),
            ),
        ),
    ];
    match response.outcome.as_ref() {
        Ok(certified) => {
            members.push((
                "classification".to_owned(),
                Json::Str("deadlock-free".to_owned()),
            ));
            members.push((
                "labeling".to_owned(),
                Json::Str(codec::labeling_method_str(certified.labeling_method).to_owned()),
            ));
            members.push((
                "labels".to_owned(),
                Json::Obj(
                    certified
                        .message_labels
                        .iter()
                        .map(|(name, label)| (name.clone(), Json::Str(label.to_string())))
                        .collect(),
                ),
            ));
            members.push((
                "max_queues_per_interval".to_owned(),
                Json::Num(certified.max_queues_per_interval as f64),
            ));
            if let Some(report) = &certified.verified {
                members.push(("verified".to_owned(), Json::Bool(report.completed)));
                members.push(("verify_cycles".to_owned(), Json::Num(report.cycles as f64)));
                if let Some(deadlock) = &report.deadlock {
                    // A failed chase is actionable: name the first blocked
                    // cell and the stall cycle, like analyzer diagnostics.
                    members.push((
                        "verify_blocked_cell".to_owned(),
                        Json::Str(deadlock.first_blocked.to_string()),
                    ));
                    members.push((
                        "verify_blocked_cycle".to_owned(),
                        Json::Num(deadlock.cycle as f64),
                    ));
                    members.push((
                        "verify_blocked_reason".to_owned(),
                        Json::Str(deadlock.reason.clone()),
                    ));
                }
            }
            members.push((
                "analysis_micros".to_owned(),
                Json::Num(certified.analysis_micros as f64),
            ));
            if !certified.diagnostics.is_empty() {
                members.push((
                    "diagnostics".to_owned(),
                    diagnostics_to_json(&certified.diagnostics),
                ));
            }
        }
        Err(rejection) => {
            members.push(("error".to_owned(), Json::Str(rejection.error.to_string())));
            members.push((
                "error_kind".to_owned(),
                Json::Str(error_kind(&rejection.error).to_owned()),
            ));
            members.push((
                "diagnostics".to_owned(),
                diagnostics_to_json(&rejection.diagnostics),
            ));
        }
    }
    members.push((
        "micros".to_owned(),
        Json::Num(response.handle_micros as f64),
    ));
    members.push((
        "fingerprint".to_owned(),
        Json::Str(format!("{:#034x}", response.fingerprint)),
    ));
    // The trace id joins this response to its span tree in the
    // `--trace-file` JSONL log (span events carry the same `trace`).
    members.push(("trace".to_owned(), Json::Num(response.trace_id as f64)));
    Json::Obj(members)
}

fn render_edit(edit: &EditResponse) -> Json {
    let mut json = render_analysis(&edit.response);
    let Json::Obj(members) = &mut json else {
        unreachable!("render_analysis always renders an object");
    };
    members.push(("base".to_owned(), Json::Str(format!("{:#034x}", edit.base))));
    let reuse = &edit.reuse;
    let classification = if reuse.resumed_classification {
        "resumed"
    } else if reuse.seeded_classification {
        "seeded"
    } else {
        "none"
    };
    let mut reuse_members = vec![
        (
            "dirty_cells".to_owned(),
            Json::Num(reuse.dirty_cells as f64),
        ),
        (
            "total_cells".to_owned(),
            Json::Num(reuse.total_cells as f64),
        ),
        ("routes".to_owned(), Json::Bool(reuse.reused_routes)),
        ("competing".to_owned(), Json::Bool(reuse.reused_competing)),
        (
            "classification".to_owned(),
            Json::Str(classification.to_owned()),
        ),
        ("fast_labeling".to_owned(), Json::Bool(reuse.fast_labeling)),
    ];
    if let Some(reason) = reuse.fallback {
        reuse_members.push(("fallback".to_owned(), Json::Str(reason.as_str().to_owned())));
    }
    members.push(("reuse".to_owned(), Json::Obj(reuse_members)));
    json
}

fn render_edit_rejected(name: &str, base: u128, error: &EditRequestError) -> Json {
    Json::Obj(vec![
        ("id".to_owned(), Json::Str(name.to_owned())),
        ("status".to_owned(), Json::Str("rejected".to_owned())),
        ("error".to_owned(), Json::Str(error.to_string())),
        ("error_kind".to_owned(), Json::Str("edit".to_owned())),
        ("base".to_owned(), Json::Str(format!("{base:#034x}"))),
    ])
}

/// The `metrics` wire op's response body: counters and gauges keyed by
/// their rendered series name, histograms as `{count, sum, max, mean,
/// p50, p99}` summaries (log2-bucket estimates for the percentiles — <
/// 2× overestimate, never an underestimate).
fn render_metrics(snapshot: &RegistrySnapshot) -> Json {
    let counters = snapshot
        .counters
        .iter()
        .map(|(key, v)| (key.render(), Json::Num(*v as f64)))
        .collect();
    let gauges = snapshot
        .gauges
        .iter()
        .map(|(key, v)| (key.render(), Json::Num(*v as f64)))
        .collect();
    let histograms = snapshot
        .histograms
        .iter()
        .map(|(key, h)| {
            (
                key.render(),
                Json::Obj(vec![
                    ("count".to_owned(), Json::Num(h.count as f64)),
                    ("sum".to_owned(), Json::Num(h.sum as f64)),
                    ("max".to_owned(), Json::Num(h.max as f64)),
                    ("mean".to_owned(), Json::Num(h.mean())),
                    ("p50".to_owned(), Json::Num(h.quantile(0.5) as f64)),
                    ("p99".to_owned(), Json::Num(h.quantile(0.99) as f64)),
                ]),
            )
        })
        .collect();
    Json::Obj(vec![
        ("status".to_owned(), Json::Str("metrics".to_owned())),
        ("counters".to_owned(), Json::Obj(counters)),
        ("gauges".to_owned(), Json::Obj(gauges)),
        ("histograms".to_owned(), Json::Obj(histograms)),
    ])
}

/// Renders structured diagnostics as a JSON array. Message/cell id arrays
/// appear only when non-empty.
fn diagnostics_to_json(diagnostics: &[Diagnostic]) -> Json {
    Json::Arr(
        diagnostics
            .iter()
            .map(|d| {
                let mut members = vec![
                    ("code".to_owned(), Json::Str(d.code().as_str().to_owned())),
                    (
                        "severity".to_owned(),
                        Json::Str(d.severity().as_str().to_owned()),
                    ),
                    ("message".to_owned(), Json::Str(d.message().to_owned())),
                ];
                if !d.message_ids().is_empty() {
                    members.push((
                        "messages".to_owned(),
                        Json::Arr(
                            d.message_ids()
                                .iter()
                                .map(|m| Json::Num(m.index() as f64))
                                .collect(),
                        ),
                    ));
                }
                if !d.cell_ids().is_empty() {
                    members.push((
                        "cells".to_owned(),
                        Json::Arr(
                            d.cell_ids()
                                .iter()
                                .map(|c| Json::Num(c.index() as f64))
                                .collect(),
                        ),
                    ));
                }
                Json::Obj(members)
            })
            .collect(),
    )
}

/// The stable `error_kind` vocabulary: `"internal"` for contained panics,
/// otherwise the [`codec::core_error_kind`] string — the same one the
/// binary snapshot format commits to, so wire and disk agree.
fn error_kind(error: &ServiceError) -> &'static str {
    match error {
        ServiceError::Panicked(_) => "internal",
        ServiceError::Analysis(error) => codec::core_error_kind(error),
    }
}

fn render_invalid(line_number: usize, error: &WireError) -> Json {
    Json::Obj(vec![
        ("id".to_owned(), Json::Str(format!("line-{line_number}"))),
        ("status".to_owned(), Json::Str("invalid".to_owned())),
        ("error".to_owned(), Json::Str(error.to_string())),
    ])
}

fn render_traffic(id: &str, item: &TrafficItem) -> Json {
    Json::Obj(vec![
        ("id".to_owned(), Json::Str(id.to_owned())),
        (
            "program".to_owned(),
            Json::Str(program_to_text(&item.program)),
        ),
        ("topology".to_owned(), Json::Str(item.topology.spec())),
        (
            "queues".to_owned(),
            Json::Num(item.queues_per_interval as f64),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Deprecated per-shape entry points, kept as thin wrappers over
// `WireResponse::to_json` for callers written against the old API.
// ---------------------------------------------------------------------------

/// Renders one service response as a JSONL line (no trailing newline).
#[deprecated(note = "use WireResponse::Analysis(..).to_json()")]
#[must_use]
pub fn response_to_json(response: &AnalysisResponse) -> Json {
    WireResponse::Analysis(response).to_json()
}

/// Renders an incremental edit outcome as a JSONL line: the usual
/// analysis response fields (`cache: "incremental"`) plus the `base`
/// echo and a `reuse` object describing what the edit reused.
#[deprecated(note = "use WireResponse::Edit(..).to_json()")]
#[must_use]
pub fn edit_response_to_json(edit: &EditResponse) -> Json {
    WireResponse::Edit(edit).to_json()
}

/// Renders a rejected edit request (unknown base, unknown names, invalid
/// batch) as a JSONL error response. The base session, if any, survives —
/// the client may retry with a corrected batch.
#[deprecated(note = "use WireResponse::EditRejected { .. }.to_json()")]
#[must_use]
pub fn edit_rejected_to_json(name: &str, base: u128, error: &EditRequestError) -> Json {
    WireResponse::EditRejected { name, base, error }.to_json()
}

/// Renders a metrics-registry snapshot as one JSON object (the `metrics`
/// wire op's response).
#[deprecated(note = "use WireResponse::Metrics(..).to_json()")]
#[must_use]
pub fn metrics_to_json(snapshot: &RegistrySnapshot) -> Json {
    WireResponse::Metrics(snapshot).to_json()
}

/// Renders one invalid request line as a JSONL error response.
#[deprecated(note = "use WireResponse::Invalid { .. }.to_json()")]
#[must_use]
pub fn invalid_to_json(line_number: usize, error: &WireError) -> Json {
    WireResponse::Invalid { line_number, error }.to_json()
}

/// Renders one traffic item as a JSONL request line (the `systolicd gen`
/// output format).
#[deprecated(note = "use WireResponse::Traffic { .. }.to_json()")]
#[must_use]
pub fn traffic_to_json(id: &str, item: &TrafficItem) -> Json {
    WireResponse::Traffic { id, item }.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalysisService, ServiceConfig};
    use systolic_core::AnalysisConfig;
    use systolic_workloads::{traffic, TrafficConfig};

    const PROGRAM: &str =
        "cells 2\nmessage A: c0 -> c1\nprogram c0 { W(A) }\nprogram c1 { R(A) }\n";

    fn request_line(extra: &str) -> String {
        let program = Json::Str(PROGRAM.to_owned());
        format!(r#"{{"id":"r1","program":{program},"topology":"linear:2"{extra}}}"#)
    }

    #[test]
    fn parses_a_minimal_request() {
        let r = parse_request(&request_line(""), 1).unwrap();
        assert_eq!(r.name, "r1");
        assert_eq!(r.program.num_messages(), 1);
        assert_eq!(r.topology, Topology::linear(2));
        assert_eq!(r.config, AnalysisConfig::default());
    }

    #[test]
    fn id_defaults_to_line_number() {
        let program = Json::Str(PROGRAM.to_owned());
        let line = format!(r#"{{"program":{program},"topology":"linear:2"}}"#);
        let r = parse_request(&line, 7).unwrap();
        assert_eq!(r.name, "line-7");
    }

    #[test]
    fn parses_queues_and_lookahead_forms() {
        let r = parse_request(&request_line(r#","queues":3,"lookahead":2"#), 1).unwrap();
        assert_eq!(r.config.queues_per_interval, 3);
        assert_eq!(r.config.lookahead, Lookahead::PerQueueCapacity(2));

        let r = parse_request(&request_line(r#","lookahead":"unbounded""#), 1).unwrap();
        assert_eq!(r.config.lookahead, Lookahead::Unbounded);

        // The test program declares exactly one message, so a 1-entry
        // explicit table is accepted...
        let r = parse_request(&request_line(r#","lookahead":[null]"#), 1).unwrap();
        assert_eq!(
            r.config.lookahead,
            Lookahead::Explicit(LookaheadLimits::from_table(vec![None]))
        );
    }

    #[test]
    fn lookahead_array_must_match_message_count() {
        // ...while a mismatched table is a field error instead of an
        // out-of-bounds panic inside the analysis (regression test: this
        // exact shape used to kill the daemon).
        for table in ["[]", "[1,2]", "[1,null,3]"] {
            let line = request_line(&format!(r#","lookahead":{table}"#));
            assert!(
                matches!(parse_request(&line, 1), Err(WireError::Field(_))),
                "lookahead {table} should be rejected for a 1-message program"
            );
        }
    }

    #[test]
    fn lookahead_magnitudes_are_bounded() {
        for extra in [
            r#","lookahead":9223372036854775808"#,
            r#","lookahead":1048577"#,
            r#","lookahead":[1048577]"#,
        ] {
            assert!(
                matches!(
                    parse_request(&request_line(extra), 1),
                    Err(WireError::Field(_))
                ),
                "{extra} should be rejected"
            );
        }
        assert!(parse_request(&request_line(r#","lookahead":1048576"#), 1).is_ok());
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(matches!(
            parse_request("not json", 1),
            Err(WireError::Json(_))
        ));
        assert!(matches!(parse_request("[1]", 1), Err(WireError::Field(_))));
        assert!(matches!(
            parse_request(r#"{"topology":"linear:2"}"#, 1),
            Err(WireError::Field(_))
        ));
        assert!(matches!(
            parse_request(&request_line(r#","queues":0"#), 1),
            Err(WireError::Field(_))
        ));
        let bad_program = r#"{"program":"bogus directive","topology":"linear:2"}"#;
        assert!(matches!(
            parse_request(bad_program, 1),
            Err(WireError::Model(_))
        ));
        let bad_topology = format!(
            r#"{{"program":{},"topology":"tree:2"}}"#,
            Json::Str(PROGRAM.to_owned())
        );
        assert!(matches!(
            parse_request(&bad_topology, 1),
            Err(WireError::Model(_))
        ));
    }

    #[test]
    fn response_roundtrips_through_the_service() {
        let service = AnalysisService::new(ServiceConfig::default());
        let request = parse_request(&request_line(""), 1).unwrap();
        let response = service.submit(request).wait();
        let json = WireResponse::Analysis(&response).to_json();
        assert_eq!(json.get("id").and_then(Json::as_str), Some("r1"));
        assert_eq!(json.get("status").and_then(Json::as_str), Some("certified"));
        assert_eq!(json.get("cache").and_then(Json::as_str), Some("miss"));
        assert_eq!(
            json.get("max_queues_per_interval").and_then(Json::as_u64),
            Some(1)
        );
        let labels = json.get("labels").unwrap();
        assert_eq!(labels.get("A").and_then(Json::as_str), Some("1"));
        // The rendered line parses back as JSON.
        assert_eq!(Json::parse(&json.to_string()).unwrap(), json);
    }

    #[test]
    fn rejected_response_names_the_error() {
        let service = AnalysisService::new(ServiceConfig::default());
        let deadlock = "cells 2\nmessage A: c0 -> c1\nmessage B: c1 -> c0\n\
                        program c0 { R(B) W(A) }\nprogram c1 { R(A) W(B) }\n";
        let line = format!(
            r#"{{"id":"d","program":{},"topology":"linear:2"}}"#,
            Json::Str(deadlock.to_owned())
        );
        let response = service.submit(parse_request(&line, 1).unwrap()).wait();
        let json = WireResponse::Analysis(&response).to_json();
        assert_eq!(json.get("status").and_then(Json::as_str), Some("rejected"));
        assert_eq!(
            json.get("error_kind").and_then(Json::as_str),
            Some("deadlocked")
        );
        assert!(json
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("deadlocked"));

        // Structured diagnostics ride along: code, severity, and the
        // offending message/cell ids, machine-readable end to end.
        let Some(Json::Arr(diagnostics)) = json.get("diagnostics") else {
            panic!("rejected responses carry a diagnostics array");
        };
        assert!(!diagnostics.is_empty());
        let d = &diagnostics[0];
        assert_eq!(d.get("code").and_then(Json::as_str), Some("E-DEADLOCK"));
        assert_eq!(d.get("severity").and_then(Json::as_str), Some("error"));
        let Some(Json::Arr(cells)) = d.get("cells") else {
            panic!("deadlock diagnostic names the stuck cells");
        };
        assert_eq!(cells.len(), 2);
        assert!(matches!(d.get("messages"), Some(Json::Arr(m)) if !m.is_empty()));
        // The rendered line still parses back as JSON.
        assert_eq!(Json::parse(&json.to_string()).unwrap(), json);
    }

    #[test]
    fn generated_traffic_lines_parse_back() {
        let stream = traffic(&TrafficConfig::default(), 9, 25);
        for (i, item) in stream.iter().enumerate() {
            let line = WireResponse::Traffic {
                id: &format!("t{i}"),
                item,
            }
            .to_json()
            .to_string();
            let request = parse_request(&line, i + 1).unwrap();
            assert_eq!(
                request.program, item.program,
                "{} did not round-trip",
                item.name
            );
            assert_eq!(request.topology, item.topology);
            assert_eq!(request.config.queues_per_interval, item.queues_per_interval);
        }
    }

    #[test]
    fn invalid_line_renders_an_error_response() {
        let err = parse_request("{", 3).unwrap_err();
        let json = WireResponse::Invalid {
            line_number: 3,
            error: &err,
        }
        .to_json();
        assert_eq!(json.get("status").and_then(Json::as_str), Some("invalid"));
        assert_eq!(json.get("id").and_then(Json::as_str), Some("line-3"));
    }

    #[test]
    fn responses_echo_their_trace_id() {
        let service = AnalysisService::new(ServiceConfig::default());
        let response = service
            .submit(parse_request(&request_line(""), 1).unwrap())
            .wait();
        let json = WireResponse::Analysis(&response).to_json();
        assert_eq!(
            json.get("trace").and_then(Json::as_u64),
            Some(response.trace_id)
        );
        assert!(response.trace_id > 0);
    }

    #[test]
    fn parse_line_routes_ops_and_requests() {
        assert!(matches!(
            parse_line(r#"{"op":"metrics"}"#, 1),
            Ok(WireRequest::Metrics)
        ));
        assert!(matches!(
            parse_line(r#"{"op":"stats"}"#, 1),
            Ok(WireRequest::Metrics)
        ));
        assert!(matches!(
            parse_line(r#"{"op":"explode"}"#, 1),
            Err(WireError::Field(_))
        ));
        assert!(matches!(
            parse_line(&request_line(""), 1),
            Ok(WireRequest::Analysis(r)) if r.name == "r1"
        ));
        assert!(matches!(
            parse_line(r#"{"op":"edit","base":"0x2a","ops":[]}"#, 1),
            Ok(WireRequest::Edit(c)) if c.base == 42 && c.ops.is_empty()
        ));
    }

    #[test]
    fn parse_edit_covers_every_op_form() {
        let line = r#"{"op":"edit","id":"e1","base":"0x00000000000000000000000000000019",
            "ops":[{"edit":"append","cell":"c0","op":"W(A)"},
                   {"edit":"append","cell":"c1","op":"R(A)"},
                   {"edit":"remove_tail","cell":"c2"},
                   {"edit":"add_link","a":"c0","b":"c5"},
                   {"edit":"remove_link","a":"c0","b":"c5"}]}"#;
        let Ok(WireRequest::Edit(command)) = parse_line(line, 1) else {
            panic!("edit line must parse");
        };
        assert_eq!(command.name, "e1");
        assert_eq!(command.base, 0x19);
        assert_eq!(
            command.ops,
            vec![
                NamedEditOp::Append {
                    cell: "c0".to_owned(),
                    write: true,
                    message: "A".to_owned(),
                },
                NamedEditOp::Append {
                    cell: "c1".to_owned(),
                    write: false,
                    message: "A".to_owned(),
                },
                NamedEditOp::RemoveTail {
                    cell: "c2".to_owned(),
                },
                NamedEditOp::AddLink {
                    a: "c0".to_owned(),
                    b: "c5".to_owned(),
                },
                NamedEditOp::RemoveLink {
                    a: "c0".to_owned(),
                    b: "c5".to_owned(),
                },
            ]
        );
        // `id` defaults to the line number, `base` accepts bare hex.
        let Ok(WireRequest::Edit(command)) = parse_line(r#"{"op":"edit","base":"ff","ops":[]}"#, 9)
        else {
            panic!("edit line must parse");
        };
        assert_eq!(command.name, "line-9");
        assert_eq!(command.base, 0xff);
    }

    #[test]
    fn parse_edit_rejects_malformed_lines() {
        for line in [
            r#"{"op":"edit","ops":[]}"#,                                // no base
            r#"{"op":"edit","base":"xyz","ops":[]}"#,                   // bad hex
            r#"{"op":"edit","base":17,"ops":[]}"#,                      // base not a string
            r#"{"op":"edit","base":"0x1"}"#,                            // no ops
            r#"{"op":"edit","base":"0x1","ops":[{}]}"#,                 // no discriminator
            r#"{"op":"edit","base":"0x1","ops":[{"edit":"explode"}]}"#, // unknown edit
            r#"{"op":"edit","base":"0x1","ops":[{"edit":"append","cell":"c0","op":"X(A)"}]}"#,
            r#"{"op":"edit","base":"0x1","ops":[{"edit":"append","cell":"c0"}]}"#, // no op
            r#"{"op":"edit","base":"0x1","ops":[{"edit":"add_link","a":"c0"}]}"#,  // no b
        ] {
            assert!(
                matches!(parse_line(line, 1), Err(WireError::Field(_))),
                "{line} should be rejected"
            );
        }
    }

    #[test]
    fn edit_response_carries_base_and_reuse() {
        use crate::NamedEditOp;
        let service = AnalysisService::new(ServiceConfig::default());
        let base = service
            .submit(parse_request(&request_line(""), 1).unwrap())
            .wait();
        // Append a balanced W/R pair so the edited program stays valid.
        let edit = service
            .apply_edit(
                "e1",
                base.fingerprint,
                &[
                    NamedEditOp::Append {
                        cell: "c0".to_owned(),
                        write: true,
                        message: "A".to_owned(),
                    },
                    NamedEditOp::Append {
                        cell: "c1".to_owned(),
                        write: false,
                        message: "A".to_owned(),
                    },
                ],
            )
            .unwrap();
        let json = WireResponse::Edit(&edit).to_json();
        assert_eq!(json.get("id").and_then(Json::as_str), Some("e1"));
        assert_eq!(
            json.get("cache").and_then(Json::as_str),
            Some("incremental")
        );
        assert_eq!(
            json.get("base").and_then(Json::as_str),
            Some(format!("{:#034x}", base.fingerprint).as_str())
        );
        let reuse = json.get("reuse").expect("reuse object");
        assert_eq!(reuse.get("dirty_cells").and_then(Json::as_u64), Some(2));
        assert_eq!(reuse.get("total_cells").and_then(Json::as_u64), Some(2));
        assert!(matches!(reuse.get("routes"), Some(Json::Bool(_))));
        assert!(matches!(reuse.get("classification"), Some(Json::Str(_))));
        // 2 dirty of 2 cells exceeds the 0.5 default ratio: a fallback.
        assert_eq!(
            reuse.get("fallback").and_then(Json::as_str),
            Some("dirty-ratio")
        );
        // The new fingerprint (not the base) is echoed for chaining.
        let next = json.get("fingerprint").and_then(Json::as_str).unwrap();
        assert_eq!(next, format!("{:#034x}", edit.response.fingerprint));
        assert_ne!(next, format!("{:#034x}", base.fingerprint));
        // The rendered line parses back as JSON.
        assert_eq!(Json::parse(&json.to_string()).unwrap(), json);
    }

    #[test]
    fn rejected_edit_renders_an_error_response() {
        let service = AnalysisService::new(ServiceConfig::default());
        let err = service.apply_edit("e1", 0x2a, &[]).unwrap_err();
        let json = WireResponse::EditRejected {
            name: "e1",
            base: 0x2a,
            error: &err,
        }
        .to_json();
        assert_eq!(json.get("status").and_then(Json::as_str), Some("rejected"));
        assert_eq!(json.get("error_kind").and_then(Json::as_str), Some("edit"));
        assert!(json
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("unknown base fingerprint"));
        assert_eq!(
            json.get("base").and_then(Json::as_str),
            Some("0x0000000000000000000000000000002a")
        );
    }

    #[test]
    fn metrics_op_dumps_the_registry_as_json() {
        let service = AnalysisService::new(ServiceConfig {
            verify: true,
            ..Default::default()
        });
        assert!(service
            .submit(parse_request(&request_line(""), 1).unwrap())
            .wait()
            .is_certified());
        let json = WireResponse::Metrics(&service.registry_snapshot()).to_json();
        assert_eq!(json.get("status").and_then(Json::as_str), Some("metrics"));
        let counters = json.get("counters").expect("counters object");
        assert_eq!(
            counters
                .get("systolic_service_requests_total")
                .and_then(Json::as_u64),
            Some(1)
        );
        let histograms = json.get("histograms").expect("histograms object");
        let handle = histograms
            .get("systolic_service_handle_duration_micros")
            .expect("handle-duration summary");
        assert_eq!(handle.get("count").and_then(Json::as_u64), Some(1));
        // The rendered line parses back as JSON.
        assert_eq!(Json::parse(&json.to_string()).unwrap(), json);
    }

    #[test]
    fn snapshot_op_parses_and_renders() {
        assert!(matches!(
            parse_line(r#"{"op":"snapshot","id":"s1"}"#, 1),
            Ok(WireRequest::Snapshot(name)) if name == "s1"
        ));
        assert!(matches!(
            parse_line(r#"{"op":"snapshot"}"#, 4),
            Ok(WireRequest::Snapshot(name)) if name == "line-4"
        ));
        assert!(matches!(
            parse_line(r#"{"op":"snapshot","id":7}"#, 1),
            Err(WireError::Field(_))
        ));

        let done = WireResponse::Snapshot {
            name: "s1",
            report: crate::SnapshotReport {
                plans: 5,
                seeds: 5,
                dropped: 0,
                bytes: 1234,
                micros: 99,
            },
        }
        .to_json();
        assert_eq!(
            done.to_string(),
            r#"{"id":"s1","status":"snapshot","plans":5,"seeds":5,"bytes":1234,"micros":99}"#
        );
        let rejected = WireResponse::SnapshotRejected {
            name: "s2",
            error: "no --snapshot-save path configured",
        }
        .to_json();
        assert_eq!(
            rejected.to_string(),
            r#"{"id":"s2","status":"rejected","error":"no --snapshot-save path configured","error_kind":"snapshot"}"#
        );
    }

    /// Locks the exact serialized field order of an analysis response, so
    /// the `WireResponse` consolidation (and any future refactor) cannot
    /// silently reorder or rename what clients parse.
    #[test]
    fn golden_analysis_field_order_is_locked() {
        use crate::{CacheProvenance, Certified};
        use std::sync::Arc;
        use systolic_core::{Analyzer, Label, LabelingMethod};

        let program = parse_program(PROGRAM).unwrap();
        let topology = Topology::linear(2);
        let config = AnalysisConfig::default();
        let analysis = Analyzer::for_topology(&topology, &config)
            .analyze(&program)
            .unwrap();
        let certified = Certified {
            plan: Arc::new(analysis.into_plan()),
            labeling_method: LabelingMethod::Section6,
            message_labels: vec![("A".to_owned(), Label::integer(1))],
            max_queues_per_interval: 1,
            verified: None,
            analysis_micros: 120,
            diagnostics: Vec::new(),
        };
        let response = AnalysisResponse {
            seq: 0,
            name: "r1".to_owned(),
            fingerprint: 0x2a,
            provenance: CacheProvenance::Warm,
            outcome: Arc::new(Ok(certified)),
            handle_micros: 130,
            trace_id: 7,
        };
        assert_eq!(
            WireResponse::Analysis(&response).to_json().to_string(),
            r#"{"id":"r1","status":"certified","cache":"warm","classification":"deadlock-free","labeling":"section6","labels":{"A":"1"},"max_queues_per_interval":1,"analysis_micros":120,"micros":130,"fingerprint":"0x0000000000000000000000000000002a","trace":7}"#
        );
    }

    /// The old per-shape entry points must stay byte-identical to the
    /// consolidated `WireResponse::to_json` on a real served batch —
    /// callers migrating between the two APIs see identical JSONL.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_render_byte_identical_lines() {
        let service = AnalysisService::new(ServiceConfig::default());
        let stream = traffic(&TrafficConfig::default(), 11, 40);
        let requests: Vec<AnalysisRequest> =
            stream.iter().map(AnalysisRequest::from_traffic).collect();
        let responses = service.run_batch(requests);
        for response in &responses {
            assert_eq!(
                response_to_json(response).to_string(),
                WireResponse::Analysis(response).to_json().to_string(),
                "{} diverged between the old and new renderers",
                response.name
            );
        }
        for item in &stream {
            assert_eq!(
                traffic_to_json(&item.name, item).to_string(),
                WireResponse::Traffic {
                    id: &item.name,
                    item
                }
                .to_json()
                .to_string()
            );
        }
        let err = parse_request("{", 3).unwrap_err();
        assert_eq!(
            invalid_to_json(3, &err).to_string(),
            WireResponse::Invalid {
                line_number: 3,
                error: &err
            }
            .to_json()
            .to_string()
        );
        let snapshot = service.registry_snapshot();
        assert_eq!(
            metrics_to_json(&snapshot).to_string(),
            WireResponse::Metrics(&snapshot).to_json().to_string()
        );
        let edit_err = service.apply_edit("e1", 0x2a, &[]).unwrap_err();
        assert_eq!(
            edit_rejected_to_json("e1", 0x2a, &edit_err).to_string(),
            WireResponse::EditRejected {
                name: "e1",
                base: 0x2a,
                error: &edit_err
            }
            .to_json()
            .to_string()
        );
        let base = service
            .submit(parse_request(&request_line(""), 1).unwrap())
            .wait();
        let edit = service
            .apply_edit(
                "e2",
                base.fingerprint,
                &[
                    NamedEditOp::Append {
                        cell: "c0".to_owned(),
                        write: true,
                        message: "A".to_owned(),
                    },
                    NamedEditOp::Append {
                        cell: "c1".to_owned(),
                        write: false,
                        message: "A".to_owned(),
                    },
                ],
            )
            .unwrap();
        assert_eq!(
            edit_response_to_json(&edit).to_string(),
            WireResponse::Edit(&edit).to_json().to_string()
        );
    }
}
