//! A minimal JSON reader/writer for the JSONL wire format.
//!
//! The workspace builds fully offline (no serde), so this module implements
//! exactly the JSON subset the service's wire format needs: objects,
//! arrays, strings with standard escapes, `i64`-exact numbers, booleans and
//! null. Object key order is preserved so emitted responses are
//! deterministic.

use core::fmt;

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Integers up to `i64` round-trip exactly; floats are kept
    /// as `f64`.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, with key order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (first match); `None` otherwise.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document from `text` (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    /// Renders compact JSON (no whitespace), escaping strings per RFC 8259.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no inf/NaN; `null` keeps the output parseable.
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A JSON syntax error with the byte offset where it was detected.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting. Input arrives over the wire from untrusted
/// clients; without a bound, the recursive-descent parser would turn a
/// line of `[[[[…` into an uncatchable stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{' | b'[') => {
                if self.depth >= MAX_DEPTH {
                    return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
                }
                self.depth += 1;
                let result = if self.peek() == Some(b'{') {
                    self.object()
                } else {
                    self.array()
                };
                self.depth -= 1;
                result
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this wire
                            // format; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded character (input is &str,
                    // so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty"); // lint: panic-ok(rest is non-empty: peek() returned Some)
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // lint: panic-ok(the number scanner above only ever consumes ASCII bytes)
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        match text.parse::<f64>() {
            // Overflowing literals like `1e999` parse to infinity, which
            // Display could not re-serialize as valid JSON — reject them.
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err(format!("invalid number `{text}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" \\slash\u{1}";
        let rendered = Json::Str(original.into()).to_string();
        let back = Json::parse(&rendered).unwrap();
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn object_roundtrips_preserving_order() {
        let v = Json::Obj(vec![
            ("z".into(), Json::Num(1.0)),
            ("a".into(), Json::Bool(false)),
            (
                "nested".into(),
                Json::Arr(vec![Json::Null, Json::Str("s".into())]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(text, r#"{"z":1,"a":false,"nested":[null,"s"]}"#);
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for text in [
            "",
            "{",
            "[1,",
            "\"open",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "{'a': 1}",
            "\"bad \\x escape\"",
            "nul",
        ] {
            assert!(Json::parse(text).is_err(), "`{text}` should fail");
        }
    }

    #[test]
    fn rejects_unescaped_control_chars() {
        assert!(Json::parse("\"a\nb\"").is_err());
    }

    #[test]
    fn overflowing_numbers_are_rejected_and_nonfinite_renders_null() {
        assert!(Json::parse("1e999").is_err());
        assert!(Json::parse("-1e999").is_err());
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-3.0).as_u64(), None);
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Bool(true).as_u64(), None);
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let bomb: String = "[".repeat(300_000);
        let err = Json::parse(&bomb).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Nesting at the limit still parses.
        let ok = format!("{}1{}", "[".repeat(128), "]".repeat(128));
        assert!(Json::parse(&ok).is_ok());
        let over = format!("{}1{}", "[".repeat(129), "]".repeat(129));
        assert!(Json::parse(&over).is_err());
    }

    #[test]
    fn unicode_escape_decodes() {
        assert_eq!(Json::parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
        assert!(Json::parse("\"\\ud800\"").is_err()); // lone surrogate
    }
}
