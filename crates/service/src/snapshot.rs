//! Versioned binary snapshot of the daemon's warm state.
//!
//! A snapshot persists the two caches a restarted daemon wants back
//! immediately: the plan cache (`fingerprint → certified plan | cached
//! rejection`, each with its diagnostics) and the recorded incremental
//! seed inputs (`fingerprint → program + topology + config`, the material
//! `edit` requests re-seed sessions from). Certificates are *static
//! artifacts* — Theorem 1 labelings don't change between runs — so
//! shipping them beats recomputing them on the whole working set.
//!
//! # Container layout
//!
//! ```text
//! magic            8 bytes   "SYSSNAP\0"
//! format version   uvarint   (currently 1)
//! section count    uvarint
//! per section:
//!   kind           uvarint   (1 = plans, 2 = seeds; unknown kinds skipped)
//!   payload len    uvarint   (validated against remaining bytes)
//!   content hash   16 bytes  (ContentHasher over the payload, LE)
//!   payload        len bytes (a systolic_core::codec field sequence)
//! ```
//!
//! Section payloads reuse the core codec (`Encode`/`Decode` with explicit
//! field tags), so the snapshot inherits its forward-compat rules: unknown
//! fields inside entries are skipped, unknown *section kinds* are skipped
//! whole, but an unknown *format version* or a failed section hash rejects
//! the load with a typed [`SnapshotError`].
//!
//! # No partial application
//!
//! [`read_snapshot`] decodes the entire file into a staging
//! [`SnapshotData`] before the service installs anything, so a corrupt
//! byte can never leave a half-warmed cache: either the whole snapshot
//! parses or the daemon keeps serving cold. Per-*entry* skew (an entry
//! re-fingerprinting differently than recorded, or a plan whose config
//! hash mismatches its seed's) is dropped and counted during installation,
//! not an error — that is what lets a daemon under a new `AnalysisConfig`
//! load an old snapshot and keep the still-valid entries.

use std::sync::Arc;

use systolic_core::codec::{
    self, decode_nested, decode_str, decode_u128, decode_u64, encode_to_vec, labeling_method_str,
    Decode, Encode, FieldReader, FieldWriter,
};
use systolic_core::{AnalysisConfig, CodecError, CommPlan, CoreError, Diagnostic, Label};
use systolic_model::{CellId, ContentHasher, Program, Topology};
use systolic_sim::{ReplayDeadlock, VerifyReport};

use crate::service::{Certified, Rejection, ServiceError};

/// Leading magic of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SYSSNAP\0";
/// Newest container version this build writes and understands.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Section kind holding cached plan outcomes.
const SECTION_PLANS: u64 = 1;
/// Section kind holding recorded incremental seed inputs.
const SECTION_SEEDS: u64 = 2;

/// Typed failure of a snapshot read or write. A failed load applies
/// nothing — the daemon keeps serving with a cold cache.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Reading or writing the snapshot file failed.
    Io(std::io::Error),
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file's format version postdates this build.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u64,
        /// Newest version this build understands.
        supported: u64,
    },
    /// The file ended inside the container framing.
    Truncated,
    /// A section length prefix declared more bytes than the file holds.
    OversizedSection {
        /// Bytes the section header claimed.
        declared: u64,
        /// Bytes actually remaining.
        available: usize,
    },
    /// A section's stored content hash does not match its payload.
    SectionHashMismatch {
        /// Kind discriminant of the corrupt section.
        kind: u64,
    },
    /// A section payload failed to decode.
    Codec(CodecError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::BadMagic => write!(f, "not a systolic snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is newer than supported version {supported}"
            ),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::OversizedSection {
                declared,
                available,
            } => write!(
                f,
                "section declares {declared} bytes but only {available} remain"
            ),
            SnapshotError::SectionHashMismatch { kind } => {
                write!(f, "section {kind} content hash mismatch (corrupt payload)")
            }
            SnapshotError::Codec(e) => write!(f, "snapshot payload: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> Self {
        SnapshotError::Codec(e)
    }
}

/// One cached plan outcome, keyed by its full request fingerprint.
#[derive(Clone, Debug)]
pub(crate) struct PlanEntry {
    /// `request_fingerprint(program, topology, config)` — the plan-cache
    /// key, which already commits to the whole request including config.
    pub fingerprint: u128,
    /// Content hash of the `AnalysisConfig` the outcome was computed
    /// under, cross-checked against the matching seed on load so
    /// config-skewed entries are dropped (counted) instead of installed.
    pub config_hash: u128,
    /// The cached outcome.
    pub outcome: Arc<Result<Certified, Rejection>>,
}

/// One recorded incremental seed input.
#[derive(Clone, Debug)]
pub(crate) struct SeedEntry {
    /// The request fingerprint this seed re-seeds sessions for.
    pub fingerprint: u128,
    /// The request's program.
    pub program: Program,
    /// The request's topology.
    pub topology: Topology,
    /// The request's analysis config.
    pub config: AnalysisConfig,
}

/// Fully decoded snapshot contents, staged before installation so a
/// failed load never partially applies.
#[derive(Default, Debug)]
pub(crate) struct SnapshotData {
    pub plans: Vec<PlanEntry>,
    pub seeds: Vec<SeedEntry>,
}

// ---------------------------------------------------------------------------
// Outcome codecs (service-side companions of the core codec)
// ---------------------------------------------------------------------------

/// Adapter: `VerifyReport` lives in `systolic_sim`, the codec traits in
/// `systolic_core`, so the orphan rule forces a local newtype.
struct VerifyReportCodec(VerifyReport);

impl Encode for VerifyReportCodec {
    fn encode(&self, w: &mut FieldWriter) {
        w.put_u64(1, u64::from(self.0.completed));
        w.put_u64(2, self.0.cycles);
        w.put_u64(3, self.0.words_delivered);
        if let Some(deadlock) = &self.0.deadlock {
            w.put_u64(4, deadlock.cycle);
            w.put_u64(5, u64::from(deadlock.first_blocked.as_u32()));
            w.put_str(6, &deadlock.reason);
            w.put_u64(7, deadlock.blocked_cells as u64);
        }
    }
}

impl Decode for VerifyReportCodec {
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError> {
        let completed = match decode_u64(r.req(1)?)? {
            0 => false,
            1 => true,
            other => {
                return Err(CodecError::Invalid(format!(
                    "completed flag must be 0 or 1, got {other}"
                )))
            }
        };
        let deadlock = match r.opt(4) {
            Some(cycle) => Some(ReplayDeadlock {
                cycle: decode_u64(cycle)?,
                first_blocked: CellId::new(
                    u32::try_from(decode_u64(r.req(5)?)?)
                        .map_err(|_| CodecError::Invalid("blocked cell exceeds u32".to_owned()))?,
                ),
                reason: decode_str(r.req(6)?)?.to_owned(),
                blocked_cells: usize::try_from(decode_u64(r.req(7)?)?)
                    .map_err(|_| CodecError::Invalid("blocked count exceeds usize".to_owned()))?,
            }),
            None => None,
        };
        Ok(VerifyReportCodec(VerifyReport {
            completed,
            cycles: decode_u64(r.req(2)?)?,
            words_delivered: decode_u64(r.req(3)?)?,
            deadlock,
        }))
    }
}

impl Encode for Certified {
    fn encode(&self, w: &mut FieldWriter) {
        w.put_nested(1, &self.plan);
        w.put_str(2, labeling_method_str(self.labeling_method));
        for (name, label) in &self.message_labels {
            let mut entry = FieldWriter::default();
            entry.put_str(1, name);
            entry.put_nested(2, label);
            w.put_bytes(3, &entry.into_bytes());
        }
        w.put_u64(4, self.max_queues_per_interval as u64);
        if let Some(report) = &self.verified {
            w.put_nested(5, &VerifyReportCodec(report.clone()));
        }
        w.put_u64(6, self.analysis_micros);
        for diagnostic in &self.diagnostics {
            w.put_nested(7, diagnostic);
        }
    }
}

impl Decode for Certified {
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError> {
        let plan: CommPlan = decode_nested(r.req(1)?)?;
        let method_str = decode_str(r.req(2)?)?;
        let labeling_method = codec::labeling_method_from_str(method_str).ok_or_else(|| {
            CodecError::Invalid(format!("unknown labeling method {method_str:?}"))
        })?;
        let message_labels = r
            .all(3)
            .map(|payload| {
                let entry = FieldReader::parse(payload)?;
                Ok((
                    decode_str(entry.req(1)?)?.to_owned(),
                    decode_nested::<Label>(entry.req(2)?)?,
                ))
            })
            .collect::<Result<Vec<(String, Label)>, CodecError>>()?;
        let verified = r
            .opt(5)
            .map(decode_nested::<VerifyReportCodec>)
            .transpose()?
            .map(|codec| codec.0);
        let diagnostics = r
            .all(7)
            .map(decode_nested::<Diagnostic>)
            .collect::<Result<Vec<Diagnostic>, CodecError>>()?;
        Ok(Certified {
            plan: Arc::new(plan),
            labeling_method,
            message_labels,
            max_queues_per_interval: usize::try_from(decode_u64(r.req(4)?)?)
                .map_err(|_| CodecError::Invalid("queue count exceeds usize".to_owned()))?,
            verified,
            analysis_micros: decode_u64(r.req(6)?)?,
            diagnostics,
        })
    }
}

impl Encode for ServiceError {
    fn encode(&self, w: &mut FieldWriter) {
        match self {
            ServiceError::Analysis(error) => {
                w.put_u64(1, 0);
                w.put_nested(2, error);
            }
            ServiceError::Panicked(message) => {
                w.put_u64(1, 1);
                w.put_str(2, message);
            }
        }
    }
}

impl Decode for ServiceError {
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError> {
        Ok(match decode_u64(r.req(1)?)? {
            0 => ServiceError::Analysis(decode_nested::<CoreError>(r.req(2)?)?),
            1 => ServiceError::Panicked(decode_str(r.req(2)?)?.to_owned()),
            other => {
                return Err(CodecError::Invalid(format!(
                    "unrecognised service error variant {other}"
                )))
            }
        })
    }
}

impl Encode for Rejection {
    fn encode(&self, w: &mut FieldWriter) {
        w.put_nested(1, &self.error);
        for diagnostic in &self.diagnostics {
            w.put_nested(2, diagnostic);
        }
    }
}

impl Decode for Rejection {
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError> {
        Ok(Rejection {
            error: decode_nested(r.req(1)?)?,
            diagnostics: r
                .all(2)
                .map(decode_nested::<Diagnostic>)
                .collect::<Result<Vec<Diagnostic>, CodecError>>()?,
        })
    }
}

/// Adapter for the cached outcome (`Result` is foreign to both crates).
struct OutcomeCodec(Result<Certified, Rejection>);

impl Encode for OutcomeCodec {
    fn encode(&self, w: &mut FieldWriter) {
        match &self.0 {
            Ok(certified) => {
                w.put_u64(1, 0);
                w.put_nested(2, certified);
            }
            Err(rejection) => {
                w.put_u64(1, 1);
                w.put_nested(3, rejection);
            }
        }
    }
}

impl Decode for OutcomeCodec {
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError> {
        Ok(OutcomeCodec(match decode_u64(r.req(1)?)? {
            0 => Ok(decode_nested::<Certified>(r.req(2)?)?),
            1 => Err(decode_nested::<Rejection>(r.req(3)?)?),
            other => {
                return Err(CodecError::Invalid(format!(
                    "unrecognised outcome variant {other}"
                )))
            }
        }))
    }
}

impl Encode for PlanEntry {
    fn encode(&self, w: &mut FieldWriter) {
        w.put_u128(1, self.fingerprint);
        w.put_u128(2, self.config_hash);
        w.put_nested(3, &OutcomeCodec((*self.outcome).clone()));
    }
}

impl Decode for PlanEntry {
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError> {
        Ok(PlanEntry {
            fingerprint: decode_u128(r.req(1)?)?,
            config_hash: decode_u128(r.req(2)?)?,
            outcome: Arc::new(decode_nested::<OutcomeCodec>(r.req(3)?)?.0),
        })
    }
}

impl Encode for SeedEntry {
    fn encode(&self, w: &mut FieldWriter) {
        w.put_u128(1, self.fingerprint);
        w.put_nested(2, &self.program);
        w.put_nested(3, &self.topology);
        w.put_nested(4, &self.config);
    }
}

impl Decode for SeedEntry {
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError> {
        Ok(SeedEntry {
            fingerprint: decode_u128(r.req(1)?)?,
            program: decode_nested(r.req(2)?)?,
            topology: decode_nested(r.req(3)?)?,
            config: decode_nested(r.req(4)?)?,
        })
    }
}

/// Repeated-entry section payloads.
struct Section<T>(Vec<T>);

impl<T: Encode> Encode for Section<T> {
    fn encode(&self, w: &mut FieldWriter) {
        for entry in &self.0 {
            w.put_nested(1, entry);
        }
    }
}

impl<T: Decode> Decode for Section<T> {
    fn decode(r: &FieldReader<'_>) -> Result<Self, CodecError> {
        Ok(Section(
            r.all(1)
                .map(decode_nested::<T>)
                .collect::<Result<Vec<T>, CodecError>>()?,
        ))
    }
}

// ---------------------------------------------------------------------------
// Container writer / reader
// ---------------------------------------------------------------------------

fn write_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn read_uvarint(input: &mut &[u8]) -> Result<u64, SnapshotError> {
    let mut value: u64 = 0;
    for (i, &byte) in input.iter().enumerate() {
        if i >= 10 || (i == 9 && byte > 0x01) {
            return Err(SnapshotError::Codec(CodecError::VarintOverflow));
        }
        value |= u64::from(byte & 0x7f) << (7 * i);
        if byte & 0x80 == 0 {
            *input = &input[i + 1..];
            return Ok(value);
        }
    }
    Err(SnapshotError::Truncated)
}

fn section_hash(payload: &[u8]) -> u128 {
    let mut hasher = ContentHasher::new();
    hasher.write_bytes(payload);
    hasher.finish()
}

fn push_section(out: &mut Vec<u8>, kind: u64, payload: &[u8]) {
    write_uvarint(out, kind);
    write_uvarint(out, payload.len() as u64);
    out.extend_from_slice(&section_hash(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Serializes staged snapshot contents into the container format.
pub(crate) fn write_snapshot(data: &SnapshotData) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    write_uvarint(&mut out, SNAPSHOT_VERSION);
    write_uvarint(&mut out, 2);
    push_section(
        &mut out,
        SECTION_PLANS,
        &encode_to_vec(&Section(data.plans.clone())),
    );
    push_section(
        &mut out,
        SECTION_SEEDS,
        &encode_to_vec(&Section(data.seeds.clone())),
    );
    out
}

/// Parses and fully validates a snapshot file into staged contents.
///
/// Every framing check (magic, version, section lengths, per-section
/// content hashes) and every entry decode runs before this returns, so a
/// caller that installs the result cannot partially apply a corrupt file.
/// Unknown section kinds are skipped (forward compat); an unknown
/// *version* is a typed rejection.
pub(crate) fn read_snapshot(bytes: &[u8]) -> Result<SnapshotData, SnapshotError> {
    let mut input = bytes;
    if input.len() < SNAPSHOT_MAGIC.len() {
        return Err(SnapshotError::Truncated);
    }
    let (magic, rest) = input.split_at(SNAPSHOT_MAGIC.len());
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    input = rest;
    let version = read_uvarint(&mut input)?;
    if version > SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let sections = read_uvarint(&mut input)?;
    let mut data = SnapshotData::default();
    for _ in 0..sections {
        let kind = read_uvarint(&mut input)?;
        let len = read_uvarint(&mut input)?;
        if input.len() < 16 {
            return Err(SnapshotError::Truncated);
        }
        let (hash_bytes, rest) = input.split_at(16);
        // lint: panic-ok(split_at(16) after the len >= 16 guard yields exactly 16 bytes)
        let stored_hash = u128::from_le_bytes(hash_bytes.try_into().expect("split_at(16)"));
        input = rest;
        if len > input.len() as u64 {
            return Err(SnapshotError::OversizedSection {
                declared: len,
                available: input.len(),
            });
        }
        let (payload, rest) = input.split_at(len as usize);
        input = rest;
        if section_hash(payload) != stored_hash {
            return Err(SnapshotError::SectionHashMismatch { kind });
        }
        match kind {
            SECTION_PLANS => {
                data.plans = codec::decode_from_slice::<Section<PlanEntry>>(payload)?.0;
            }
            SECTION_SEEDS => {
                data.seeds = codec::decode_from_slice::<Section<SeedEntry>>(payload)?.0;
            }
            // Forward compat: a future writer may append section kinds
            // this build does not know; they are hash-checked (above) and
            // skipped.
            _ => {}
        }
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_core::LabelingMethod;
    use systolic_model::CanonicalHash;
    use systolic_workloads::{fig7, fig7_topology};

    fn sample_data() -> SnapshotData {
        let program = fig7(3);
        let topology = fig7_topology();
        let config = AnalysisConfig::default();
        let fingerprint = systolic_core::request_fingerprint(&program, &topology, &config);
        let analysis = systolic_core::Analyzer::for_topology(&topology, &config)
            .analyze(&program)
            .expect("certifies");
        let plan = Arc::new(analysis.into_plan());
        let message_labels = program
            .message_ids()
            .map(|m| (program.message(m).name().to_owned(), plan.label(m)))
            .collect();
        let certified = Certified {
            max_queues_per_interval: plan.requirements().max_per_interval(),
            plan,
            labeling_method: LabelingMethod::Section6,
            message_labels,
            verified: Some(VerifyReport {
                completed: true,
                cycles: 42,
                words_delivered: 9,
                deadlock: None,
            }),
            analysis_micros: 1234,
            diagnostics: Vec::new(),
        };
        SnapshotData {
            plans: vec![PlanEntry {
                fingerprint,
                config_hash: config.content_hash(),
                outcome: Arc::new(Ok(certified)),
            }],
            seeds: vec![SeedEntry {
                fingerprint,
                program,
                topology,
                config,
            }],
        }
    }

    #[test]
    fn container_roundtrips() {
        let data = sample_data();
        let bytes = write_snapshot(&data);
        let back = read_snapshot(&bytes).expect("snapshot parses");
        assert_eq!(back.plans.len(), 1);
        assert_eq!(back.seeds.len(), 1);
        assert_eq!(back.plans[0].fingerprint, data.plans[0].fingerprint);
        assert_eq!(back.plans[0].config_hash, data.plans[0].config_hash);
        let original = data.plans[0].outcome.as_ref().as_ref().expect("certified");
        let restored = back.plans[0].outcome.as_ref().as_ref().expect("certified");
        assert_eq!(restored.plan.fingerprint(), original.plan.fingerprint());
        assert_eq!(restored.message_labels, original.message_labels);
        assert_eq!(restored.verified, original.verified);
        assert_eq!(back.seeds[0].program, data.seeds[0].program);
        assert_eq!(back.seeds[0].topology, data.seeds[0].topology);
        assert_eq!(back.seeds[0].config, data.seeds[0].config);
    }

    #[test]
    fn rejection_outcomes_roundtrip() {
        let rejection = Rejection {
            error: ServiceError::Analysis(CoreError::ProgramDeadlocked {
                crossed_words: 7,
                remaining_ops: 2,
            }),
            diagnostics: vec![Diagnostic::new(
                systolic_core::DiagnosticCode::Deadlock,
                "deadlocked after 7 crossed words",
            )],
        };
        let data = SnapshotData {
            plans: vec![PlanEntry {
                fingerprint: 99,
                config_hash: 7,
                outcome: Arc::new(Err(rejection.clone())),
            }],
            seeds: Vec::new(),
        };
        let back = read_snapshot(&write_snapshot(&data)).expect("parses");
        let restored = back.plans[0]
            .outcome
            .as_ref()
            .as_ref()
            .expect_err("rejected");
        assert_eq!(*restored, rejection);
    }

    // ---- corrupt-input corpus -------------------------------------------

    #[test]
    fn truncated_header_rejected() {
        for cut in 0..SNAPSHOT_MAGIC.len() {
            assert!(matches!(
                read_snapshot(&SNAPSHOT_MAGIC[..cut]),
                Err(SnapshotError::Truncated)
            ));
        }
        // Magic alone, version byte missing.
        assert!(matches!(
            read_snapshot(&SNAPSHOT_MAGIC),
            Err(SnapshotError::Truncated)
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = write_snapshot(&sample_data());
        bytes[0] ^= 0x40;
        assert!(matches!(
            read_snapshot(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        write_uvarint(&mut bytes, SNAPSHOT_VERSION + 1);
        write_uvarint(&mut bytes, 0);
        match read_snapshot(&bytes) {
            Err(SnapshotError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, SNAPSHOT_VERSION + 1);
                assert_eq!(supported, SNAPSHOT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn wrong_section_hash_rejected() {
        let bytes = write_snapshot(&sample_data());
        // Flip one byte inside the first section payload (well past the
        // magic + version + count + kind + len + hash prefix).
        let mut corrupt = bytes.clone();
        let idx = bytes.len() - 3;
        corrupt[idx] ^= 0xff;
        assert!(matches!(
            read_snapshot(&corrupt),
            Err(SnapshotError::SectionHashMismatch { .. })
        ));
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        write_uvarint(&mut bytes, SNAPSHOT_VERSION);
        write_uvarint(&mut bytes, 1); // one section
        write_uvarint(&mut bytes, SECTION_PLANS);
        write_uvarint(&mut bytes, 1 << 50); // declared length >> file size
        bytes.extend_from_slice(&[0u8; 16]); // hash placeholder
        match read_snapshot(&bytes) {
            Err(SnapshotError::OversizedSection { declared, .. }) => {
                assert_eq!(declared, 1 << 50);
            }
            other => panic!("expected OversizedSection, got {other:?}"),
        }
    }

    #[test]
    fn every_single_byte_truncation_is_typed_not_panic() {
        let bytes = write_snapshot(&sample_data());
        for cut in 0..bytes.len() {
            // Any prefix must produce a typed error (or, for prefixes that
            // happen to frame completely, a successful parse) — never a
            // panic and never a half-decoded staging struct.
            let _ = read_snapshot(&bytes[..cut]);
        }
    }

    #[test]
    fn every_single_byte_corruption_is_typed_not_panic() {
        let bytes = write_snapshot(&sample_data());
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            let _ = read_snapshot(&corrupt);
        }
    }

    #[test]
    fn unknown_section_kinds_are_skipped() {
        let data = sample_data();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        write_uvarint(&mut bytes, SNAPSHOT_VERSION);
        write_uvarint(&mut bytes, 3);
        // A section kind from the future, first in the table.
        push_section(&mut bytes, 77, b"opaque payload from a future build");
        push_section(
            &mut bytes,
            SECTION_PLANS,
            &encode_to_vec(&Section(data.plans.clone())),
        );
        push_section(
            &mut bytes,
            SECTION_SEEDS,
            &encode_to_vec(&Section(data.seeds.clone())),
        );
        let back = read_snapshot(&bytes).expect("unknown section skipped");
        assert_eq!(back.plans.len(), 1);
        assert_eq!(back.seeds.len(), 1);
    }
}
