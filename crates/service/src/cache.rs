//! A sharded, mutex-per-shard LRU cache for analysis results.
//!
//! The cache is keyed by the 128-bit content fingerprint of a request
//! ([`systolic_core::request_fingerprint`]) and holds cheaply clonable
//! values (the service stores `Arc`ed analysis outcomes). Sharding bounds
//! lock contention: a request locks only the shard its key hashes to, so
//! N shards admit N concurrent cache operations. Each shard keeps an exact
//! LRU order (recency tick per entry) and hit/miss/eviction/insertion
//! counters.

use std::collections::{BTreeMap, HashMap};

use parking_lot::Mutex;

/// Configuration of a [`ShardedCache`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Number of independent shards (each its own lock + LRU). Clamped to
    /// at least 1.
    pub shards: usize,
    /// Entries per shard before LRU eviction kicks in. Clamped to at
    /// least 1.
    pub capacity_per_shard: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 8,
            capacity_per_shard: 256,
        }
    }
}

/// Counter snapshot of one shard (or, summed, of the whole cache).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by LRU pressure.
    pub evictions: u64,
    /// Entries successfully inserted.
    pub insertions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    fn add(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.insertions += other.insertions;
        self.entries += other.entries;
    }

    /// Hit rate in `0.0..=1.0` (0.0 before any lookups).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Shard<V> {
    /// key → (recency tick, value).
    entries: HashMap<u128, (u64, V)>,
    /// recency tick → key; the smallest tick is the LRU entry.
    by_tick: BTreeMap<u64, u128>,
    tick: u64,
    stats: CacheStats,
}

impl<V> Shard<V> {
    fn new() -> Self {
        Shard {
            entries: HashMap::new(),
            by_tick: BTreeMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// A concurrent LRU cache split into independently locked shards.
///
/// # Examples
///
/// ```
/// use systolic_service::{CacheConfig, ShardedCache};
///
/// let cache: ShardedCache<&'static str> = ShardedCache::new(CacheConfig::default());
/// assert_eq!(cache.get(1), None);
/// let (value, inserted) = cache.insert(1, "plan");
/// assert!(inserted);
/// assert_eq!(value, "plan");
/// assert_eq!(cache.get(1), Some("plan"));
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
pub struct ShardedCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    capacity_per_shard: usize,
}

impl<V: Clone> ShardedCache<V> {
    /// Creates an empty cache with `config.shards` shards.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            capacity_per_shard: config.capacity_per_shard.max(1),
        }
    }

    /// Number of shards (≥ 1).
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: u128) -> &Mutex<Shard<V>> {
        // Fold the 128-bit fingerprint before reducing mod shard count so
        // both halves contribute to shard selection.
        let folded = (key >> 64) as u64 ^ key as u64;
        &self.shards[(folded % self.shards.len() as u64) as usize]
    }

    /// Looks up `key`, bumping its recency and the hit/miss counters.
    #[must_use]
    pub fn get(&self, key: u128) -> Option<V> {
        let mut shard = self.shard_of(key).lock();
        let tick = shard.next_tick();
        if let Some((old_tick, value)) = shard.entries.get_mut(&key) {
            let prev = std::mem::replace(old_tick, tick);
            let value = value.clone();
            shard.by_tick.remove(&prev);
            shard.by_tick.insert(tick, key);
            shard.stats.hits += 1;
            Some(value)
        } else {
            shard.stats.misses += 1;
            None
        }
    }

    /// Inserts `value` under `key` unless the key is already resident.
    ///
    /// Returns `(winning value, inserted)`: when another writer raced this
    /// one, the resident value wins and is returned with `inserted ==
    /// false` — so concurrent submissions of the same request converge on
    /// one cache entry and one shared outcome. Does not count as a hit or
    /// miss.
    pub fn insert(&self, key: u128, value: V) -> (V, bool) {
        let mut shard = self.shard_of(key).lock();
        if let Some((_, resident)) = shard.entries.get(&key) {
            return (resident.clone(), false);
        }
        if shard.entries.len() >= self.capacity_per_shard {
            if let Some((&lru_tick, &lru_key)) = shard.by_tick.iter().next() {
                shard.by_tick.remove(&lru_tick);
                shard.entries.remove(&lru_key);
                shard.stats.evictions += 1;
            }
        }
        let tick = shard.next_tick();
        shard.entries.insert(key, (tick, value.clone()));
        shard.by_tick.insert(tick, key);
        shard.stats.insertions += 1;
        (value, true)
    }

    /// Clones every resident value, shard by shard (order unspecified).
    /// Does not touch recency or the hit/miss counters.
    #[must_use]
    pub fn values(&self) -> Vec<V> {
        self.shards
            .iter()
            .flat_map(|shard| {
                let s = shard.lock();
                s.entries
                    .values()
                    .map(|(_, v)| v.clone())
                    .collect::<Vec<V>>()
            })
            .collect()
    }

    /// Clones every resident `(key, value)` pair, shard by shard (order
    /// unspecified). Does not touch recency or the hit/miss counters —
    /// the snapshot exporter walks the cache without perturbing LRU order.
    #[must_use]
    pub fn entries(&self) -> Vec<(u128, V)> {
        self.shards
            .iter()
            .flat_map(|shard| {
                let s = shard.lock();
                s.entries
                    .iter()
                    .map(|(k, (_, v))| (*k, v.clone()))
                    .collect::<Vec<(u128, V)>>()
            })
            .collect()
    }

    /// Total entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// `true` if no shard holds any entry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters summed across shards.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard.lock();
            let mut snapshot = s.stats;
            snapshot.entries = s.entries.len();
            total.add(&snapshot);
        }
        total
    }

    /// Per-shard counter snapshots, in shard order.
    #[must_use]
    pub fn per_shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|shard| {
                let s = shard.lock();
                let mut snapshot = s.stats;
                snapshot.entries = s.entries.len();
                snapshot
            })
            .collect()
    }
}

impl<V> std::fmt::Debug for ShardedCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(shards: usize, cap: usize) -> ShardedCache<u32> {
        ShardedCache::new(CacheConfig {
            shards,
            capacity_per_shard: cap,
        })
    }

    #[test]
    fn get_then_insert_then_hit() {
        let c = small(4, 8);
        assert_eq!(c.get(10), None);
        assert_eq!(c.insert(10, 1), (1, true));
        assert_eq!(c.get(10), Some(1));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.entries), (1, 1, 1, 1));
    }

    #[test]
    fn insert_is_first_writer_wins() {
        let c = small(1, 8);
        assert_eq!(c.insert(5, 100), (100, true));
        assert_eq!(c.insert(5, 200), (100, false));
        assert_eq!(c.get(5), Some(100));
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().insertions, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c = small(1, 2);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.get(1), Some(1)); // 2 is now LRU
        c.insert(3, 3);
        assert_eq!(c.get(2), None, "LRU entry should have been evicted");
        assert_eq!(c.get(1), Some(1));
        assert_eq!(c.get(3), Some(3));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn shards_isolate_keys() {
        let c = small(4, 1);
        // With per-shard capacity 1, four keys in distinct shards coexist.
        let keys: Vec<u128> = (0..4u128).collect();
        for &k in &keys {
            c.insert(k, k as u32);
        }
        let resident = keys.iter().filter(|&&k| c.get(k).is_some()).count();
        // Keys 0..4 fold to shard indices 0..4 distinctly.
        assert_eq!(resident, 4);
        assert_eq!(c.per_shard_stats().len(), 4);
    }

    #[test]
    fn both_key_halves_select_shards() {
        let c = small(8, 8);
        let low = 3u128;
        let high = 3u128 << 64;
        c.insert(low, 1);
        c.insert(high, 2);
        assert_eq!(c.get(low), Some(1));
        assert_eq!(c.get(high), Some(2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_config_is_clamped() {
        let c: ShardedCache<u32> = ShardedCache::new(CacheConfig {
            shards: 0,
            capacity_per_shard: 0,
        });
        assert_eq!(c.num_shards(), 1);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.len(), 1, "capacity clamps to 1");
    }

    #[test]
    fn entries_exports_keys_without_touching_counters() {
        let c = small(4, 8);
        c.insert(1, 10);
        c.insert(2, 20);
        let mut entries = c.entries();
        entries.sort_unstable();
        assert_eq!(entries, vec![(1, 10), (2, 20)]);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (0, 0), "export must not perturb stats");
    }

    #[test]
    fn hit_rate_reflects_counters() {
        let c = small(2, 4);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.insert(1, 1);
        let _ = c.get(1);
        let _ = c.get(1);
        let _ = c.get(9);
        let rate = c.stats().hit_rate();
        assert!((rate - 2.0 / 3.0).abs() < 1e-9, "rate = {rate}");
    }

    #[test]
    fn concurrent_inserts_of_one_key_leave_one_entry() {
        use std::sync::Arc;
        let c = Arc::new(small(8, 64));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || c.insert(42, i).0)
            })
            .collect();
        let winners: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(c.len(), 1);
        // Every thread observed the same winning value.
        assert!(winners.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(c.stats().insertions, 1);
    }
}
