//! A bounded MPMC submission queue with blocking backpressure.
//!
//! Producers calling [`BoundedQueue::push`] block while the queue is full —
//! that blocking *is* the service's admission control: a client replaying a
//! huge JSONL file is slowed to the pace the worker pool can sustain
//! instead of ballooning memory. Consumers block in
//! [`BoundedQueue::pop`] until an item or shutdown arrives.

use std::collections::VecDeque;

use parking_lot::{Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Error returned when pushing into a closed queue; carries the rejected
/// item back to the caller.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QueueClosed<T>(pub T);

/// A bounded multi-producer multi-consumer queue.
///
/// # Examples
///
/// ```
/// use systolic_service::BoundedQueue;
///
/// let q = BoundedQueue::new(2);
/// q.push(1).unwrap();
/// q.push(2).unwrap();
/// assert!(q.try_push(3).is_err()); // full: a blocking push would wait
/// assert_eq!(q.pop(), Some(1));
/// q.close();
/// assert_eq!(q.pop(), Some(2)); // drains before reporting closure
/// assert_eq!(q.pop(), None);
/// ```
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueues `item`, blocking while the queue is full (backpressure).
    ///
    /// # Errors
    ///
    /// Returns the item in [`QueueClosed`] if the queue was closed before
    /// space became available.
    pub fn push(&self, item: T) -> Result<(), QueueClosed<T>> {
        let mut state = self.state.lock();
        while state.items.len() >= self.capacity && !state.closed {
            self.not_full.wait(&mut state);
        }
        if state.closed {
            return Err(QueueClosed(item));
        }
        state.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// Returns the item if the queue is full or closed.
    pub fn try_push(&self, item: T) -> Result<(), QueueClosed<T>> {
        let mut state = self.state.lock();
        if state.closed || state.items.len() >= self.capacity {
            return Err(QueueClosed(item));
        }
        state.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained.
    #[must_use]
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            self.not_empty.wait(&mut state);
        }
    }

    /// Dequeues up to `max` items in one lock acquisition: blocks for the
    /// first item (as [`pop`](BoundedQueue::pop)), then greedily drains
    /// whatever else is already queued, without waiting for more. Returns
    /// an empty vec once the queue is closed *and* drained.
    ///
    /// This is the verify scheduler's **coalescing window**: chases that
    /// queued up while the previous fan-out ran are dispatched together
    /// as one heterogeneous batch instead of one at a time.
    #[must_use]
    pub fn pop_many(&self, max: usize) -> Vec<T> {
        let max = max.max(1);
        let mut state = self.state.lock();
        loop {
            if !state.items.is_empty() {
                let take = state.items.len().min(max);
                let items: Vec<T> = state.items.drain(..take).collect();
                // Everyone blocked on a full queue may now have room.
                self.not_full.notify_all();
                return items;
            }
            if state.closed {
                return Vec::new();
            }
            self.not_empty.wait(&mut state);
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// blocked producers/consumers wake.
    pub fn close(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// `true` if nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn try_push_reports_full() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(QueueClosed(2)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push("a").unwrap();
        q.close();
        assert_eq!(q.push("b"), Err(QueueClosed("b")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_push_blocks_until_a_pop() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(2));
        // Give the producer time to block on the full queue.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1, "blocked producer must not have enqueued");
        assert_eq!(q.pop(), Some(1));
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.push(7).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn capacity_clamps_to_one() {
        let q = BoundedQueue::new(0);
        q.try_push(1).unwrap();
        assert!(q.try_push(2).is_err());
    }

    #[test]
    fn pop_many_drains_whats_queued_without_waiting_for_more() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.pop_many(3), vec![0, 1, 2], "bounded by max");
        assert_eq!(q.pop_many(8), vec![3, 4], "greedy but non-blocking past 1");
        q.push(9).unwrap();
        q.close();
        assert_eq!(q.pop_many(8), vec![9], "drains after close");
        assert!(q.pop_many(8).is_empty(), "closed and drained");
    }

    #[test]
    fn pop_many_blocks_until_first_item() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop_many(4));
        std::thread::sleep(Duration::from_millis(20));
        q.push(7).unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(got, vec![7]);
    }

    #[test]
    fn pop_many_wakes_blocked_producers() {
        let q = Arc::new(BoundedQueue::new(2));
        q.push(1).unwrap();
        q.push(2).unwrap();
        let producers: Vec<_> = (3..5)
            .map(|i| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.push(i))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop_many(2), vec![1, 2]);
        for p in producers {
            p.join().unwrap().unwrap();
        }
        let mut rest = q.pop_many(2);
        rest.sort_unstable();
        assert_eq!(rest, vec![3, 4], "both blocked producers got in");
    }
}
