//! A sharded, cached, batch analysis service for systolic deadlock
//! avoidance.
//!
//! The analysis pipeline (`systolic_core::analyze`) is pure compile-time
//! work — exactly the kind of thing a toolchain serves to many clients and
//! amortizes across identical requests. This crate turns it into that
//! shared subsystem:
//!
//! * [`ShardedCache`] — an N-shard, mutex-per-shard LRU plan cache keyed
//!   by the 128-bit content fingerprint of `(Program, Topology,
//!   AnalysisConfig)` ([`systolic_core::request_fingerprint`]), with
//!   hit/miss/eviction counters per shard;
//! * [`BoundedQueue`] — the bounded submission queue whose blocking
//!   `push` is the service's backpressure;
//! * [`AnalysisService`] — the worker pool: fingerprints each request,
//!   serves hits from cache, computes misses (optionally chasing each
//!   certified plan with a `systolic_sim` verification run) and returns
//!   structured [`AnalysisResponse`]s with cache provenance and timings;
//! * verification chasing — inline chases replay through each worker's
//!   [`ArenaLru`] (warm arenas keyed by compiled topology, sized by an
//!   [`ArenaBudget`]: [`ServiceConfig::arena_cache_capacity`] /
//!   [`ServiceConfig::arena_mem_budget`]);
//!   [`ServiceConfig::verify_threads`] instead coalesces the chases of a
//!   batch window into one fan-out through a cross-topology
//!   [`VerifyScheduler`](systolic_sim::VerifyScheduler), whose queue
//!   depth and per-topology fan-outs the summary reports;
//! * [`wire`] + [`Json`] — the JSONL request/response format of the
//!   [`systolicd`](../systolicd/index.html) binary, which replays scripted
//!   traffic files end to end;
//! * observability — every service shares one
//!   [`Obs`](systolic_obs::Obs) bundle
//!   ([`AnalysisService::with_obs`]): analyzer stage timings, arena-cache
//!   and scheduler counters, and request/verify spans all land in its
//!   registry/tracer, exported as a Prometheus text exposition
//!   ([`AnalysisService::registry_snapshot`]), a `metrics` wire op
//!   ([`wire::WireResponse::Metrics`]), or a JSONL span log;
//! * snapshot persistence — [`AnalysisService::save_snapshot`] /
//!   [`AnalysisService::load_snapshot`] round-trip the plan cache and its
//!   recorded seed inputs through the versioned binary container in
//!   [`SNAPSHOT_MAGIC`]'s format, so a restarted daemon warms instantly
//!   (`systolicd serve --snapshot-load/--snapshot-save`); warmed hits
//!   report [`CacheProvenance::Warm`].
//!
//! # Examples
//!
//! ```
//! use systolic_service::{AnalysisRequest, AnalysisService, ServiceConfig};
//! use systolic_workloads::{traffic, TrafficConfig};
//!
//! let service = AnalysisService::new(ServiceConfig::default());
//! let requests = traffic(&TrafficConfig::default(), 42, 100)
//!     .iter()
//!     .map(AnalysisRequest::from_traffic)
//!     .collect();
//! let responses = service.run_batch(requests);
//! assert_eq!(responses.len(), 100);
//! let stats = service.stats();
//! assert!(stats.cache.hits > 0, "hot traffic repeats must hit the cache");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod cache;
pub mod daemon;
mod json;
mod queue;
mod service;
mod snapshot;
mod varena;
pub mod wire;

pub use cache::{CacheConfig, CacheStats, ShardedCache};
pub use json::{Json, JsonError};
pub use queue::{BoundedQueue, QueueClosed};
pub use service::{
    AnalysisRequest, AnalysisResponse, AnalysisService, ArenaCacheStats, CacheProvenance,
    Certified, EditRequestError, EditResponse, IncrementalStats, NamedEditOp, Rejection,
    ServiceConfig, ServiceError, ServiceOutcome, ServiceStats, SnapshotReport, SnapshotStats,
    Ticket, TopologyVerifyStats,
};
pub use snapshot::{SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use varena::{ArenaBudget, ArenaLookup, ArenaLru};
