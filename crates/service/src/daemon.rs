//! Consolidated option parsing for the `systolicd` daemon.
//!
//! Every flag `systolicd` understands is parsed and validated here, in
//! one place, so the binary stays a thin I/O loop and tests can exercise
//! each rejection message without spawning a process.
//! [`DaemonCommand::parse`] takes the argument vector (after the program
//! name) and returns either a fully validated command or a typed
//! [`OptionsError`] whose `Display` is exactly the message `systolicd`
//! prints (prefixed `systolicd: `) before exiting 2; [`OptionsError::Usage`]
//! means "print [`USAGE`] instead".
//!
//! Cross-flag constraints are validated here too: `--snapshot-every N`
//! (autosave cadence) is rejected without a `--snapshot-save` path to
//! write to, and numeric clamps (`--workers 0` → 1, `--hot-percent 200`
//! → 100) are applied during parsing so the returned options are always
//! directly usable.

use std::fmt;

use systolic_workloads::TrafficConfig;

use crate::{CacheConfig, ServiceConfig};

/// Usage text printed on malformed invocations (exit status 2).
pub const USAGE: &str = "usage:\n  systolicd gen --count N [--seed S] [--hot-percent P]\n  \
     systolicd serve [FILE] [--workers N] [--shards N] [--capacity N] \
     [--queue-depth N] [--verify] [--verify-threads N] \
     [--arena-cache-cap N] [--arena-mem-budget BYTES] \
     [--session-cap N] [--incremental-fallback-ratio R] \
     [--snapshot-load PATH] [--snapshot-save PATH] [--snapshot-every N] \
     [--summary] [--summary-json] [--metrics-file PATH] [--trace-file PATH]";

/// Why an argument vector was rejected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum OptionsError {
    /// Unknown subcommand, unknown flag, or a missing required argument:
    /// the caller should print [`USAGE`].
    Usage,
    /// The flag was not followed by a non-negative integer.
    Value(&'static str),
    /// The flag was not followed by a ratio within `0.0..=1.0`.
    Ratio(&'static str),
    /// The flag was not followed by a (non-empty) file path.
    Path(&'static str),
    /// The flag only makes sense combined with another flag that was
    /// absent.
    Requires {
        /// The flag that was given.
        flag: &'static str,
        /// The flag it needs.
        requires: &'static str,
    },
}

impl fmt::Display for OptionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptionsError::Usage => f.write_str("invalid usage"),
            OptionsError::Value(flag) => {
                write!(f, "{flag} needs a non-negative integer value")
            }
            OptionsError::Ratio(flag) => write!(f, "{flag} needs a ratio in 0.0..=1.0"),
            OptionsError::Path(flag) => write!(f, "{flag} needs a file path"),
            OptionsError::Requires { flag, requires } => {
                write!(f, "{flag} requires {requires}")
            }
        }
    }
}

impl std::error::Error for OptionsError {}

/// A parsed and validated `systolicd` invocation.
#[derive(Clone, Debug)]
pub enum DaemonCommand {
    /// `systolicd gen` — emit a deterministic JSONL request stream.
    Gen(GenOptions),
    /// `systolicd serve` — answer a JSONL request stream.
    Serve(Box<ServeOptions>),
}

impl DaemonCommand {
    /// Parses the argument vector following the program name.
    ///
    /// # Errors
    ///
    /// Returns an [`OptionsError`] naming the offending flag; the
    /// argument vector is rejected as a whole (no partial options
    /// escape).
    pub fn parse(args: &[String]) -> Result<DaemonCommand, OptionsError> {
        match args.first().map(String::as_str) {
            Some("gen") => Ok(DaemonCommand::Gen(GenOptions::parse(&args[1..])?)),
            Some("serve") => Ok(DaemonCommand::Serve(Box::new(ServeOptions::parse(
                &args[1..],
            )?))),
            _ => Err(OptionsError::Usage),
        }
    }
}

/// Options of `systolicd gen`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GenOptions {
    /// Number of requests to generate (`--count`, required).
    pub count: usize,
    /// Stream seed (`--seed`, default 42).
    pub seed: u64,
    /// Hot-set repeat probability in percent (`--hot-percent`, clamped
    /// to 100; default [`TrafficConfig::default`]).
    pub hot_percent: u32,
}

impl GenOptions {
    fn parse(args: &[String]) -> Result<GenOptions, OptionsError> {
        let mut count = None;
        let mut seed = 42u64;
        let mut hot_percent = TrafficConfig::default().hot_percent;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--count" => count = Some(take_value(&mut iter, "--count")?),
                "--seed" => seed = take_value(&mut iter, "--seed")? as u64,
                "--hot-percent" => {
                    hot_percent = take_value(&mut iter, "--hot-percent")?.min(100) as u32;
                }
                _ => return Err(OptionsError::Usage),
            }
        }
        let Some(count) = count else {
            return Err(OptionsError::Usage);
        };
        Ok(GenOptions {
            count,
            seed,
            hot_percent,
        })
    }

    /// The traffic shape these options describe.
    #[must_use]
    pub fn traffic_config(&self) -> TrafficConfig {
        TrafficConfig {
            hot_percent: self.hot_percent,
            ..TrafficConfig::default()
        }
    }
}

/// Options of `systolicd serve`.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Service shape assembled from the tuning flags (`--workers`,
    /// `--shards`, `--capacity`, `--queue-depth`, `--verify`,
    /// `--verify-threads`, `--arena-cache-cap`, `--arena-mem-budget`,
    /// `--session-cap`, `--incremental-fallback-ratio`).
    pub service: ServiceConfig,
    /// `--summary`: print the stats table to stderr on exit.
    pub summary: bool,
    /// `--summary-json`: print the summary as one JSON object to stderr.
    pub summary_json: bool,
    /// `--metrics-file PATH`: Prometheus exposition written on exit.
    pub metrics_file: Option<String>,
    /// `--trace-file PATH`: JSONL span log written on exit.
    pub trace_file: Option<String>,
    /// Positional FILE to read requests from (stdin when absent).
    pub input_path: Option<String>,
    /// `--snapshot-load PATH`: warm the plan cache from a snapshot
    /// before serving the first request. A rejected load (missing file,
    /// corrupt bytes, future format version) keeps the daemon serving —
    /// cold, never partially warmed.
    pub snapshot_load: Option<String>,
    /// `--snapshot-save PATH`: where `{"op": "snapshot"}` requests,
    /// `--snapshot-every` autosaves, and the exit-time save write the
    /// snapshot.
    pub snapshot_save: Option<String>,
    /// `--snapshot-every N`: autosave to
    /// [`snapshot_save`](ServeOptions::snapshot_save) after every `N`
    /// served requests (`0`, the default, saves only on request and at
    /// exit). Requires `--snapshot-save`.
    pub snapshot_every: usize,
}

impl ServeOptions {
    fn parse(args: &[String]) -> Result<ServeOptions, OptionsError> {
        let mut config = ServiceConfig::default();
        let mut cache = CacheConfig::default();
        let mut options = ServeOptions {
            service: config,
            summary: false,
            summary_json: false,
            metrics_file: None,
            trace_file: None,
            input_path: None,
            snapshot_load: None,
            snapshot_save: None,
            snapshot_every: 0,
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--workers" => config.workers = take_value(&mut iter, "--workers")?.max(1),
                "--shards" => cache.shards = take_value(&mut iter, "--shards")?.max(1),
                "--capacity" => {
                    cache.capacity_per_shard = take_value(&mut iter, "--capacity")?.max(1);
                }
                "--queue-depth" => {
                    config.queue_depth = take_value(&mut iter, "--queue-depth")?.max(1);
                }
                "--verify" => config.verify = true,
                "--verify-threads" => {
                    config.verify_threads = take_value(&mut iter, "--verify-threads")?;
                }
                "--arena-cache-cap" => {
                    // 0 means "size automatically from observed topologies".
                    config.arena_cache_capacity = take_value(&mut iter, "--arena-cache-cap")?;
                }
                "--arena-mem-budget" => {
                    config.arena_mem_budget =
                        Some(take_value(&mut iter, "--arena-mem-budget")?.max(1));
                }
                "--session-cap" => {
                    config.session_capacity = take_value(&mut iter, "--session-cap")?.max(1);
                }
                "--incremental-fallback-ratio" => {
                    config.incremental_fallback_ratio =
                        take_ratio(&mut iter, "--incremental-fallback-ratio")?;
                }
                "--summary" => options.summary = true,
                "--summary-json" => options.summary_json = true,
                "--metrics-file" => {
                    options.metrics_file = Some(take_path(&mut iter, "--metrics-file")?);
                }
                "--trace-file" => {
                    options.trace_file = Some(take_path(&mut iter, "--trace-file")?);
                }
                "--snapshot-load" => {
                    options.snapshot_load = Some(take_path(&mut iter, "--snapshot-load")?);
                }
                "--snapshot-save" => {
                    options.snapshot_save = Some(take_path(&mut iter, "--snapshot-save")?);
                }
                "--snapshot-every" => {
                    options.snapshot_every = take_value(&mut iter, "--snapshot-every")?;
                }
                path if !path.starts_with('-') && options.input_path.is_none() => {
                    options.input_path = Some(path.to_owned());
                }
                _ => return Err(OptionsError::Usage),
            }
        }
        if options.snapshot_every > 0 && options.snapshot_save.is_none() {
            return Err(OptionsError::Requires {
                flag: "--snapshot-every",
                requires: "--snapshot-save",
            });
        }
        config.cache = cache;
        options.service = config;
        Ok(options)
    }
}

fn take_value(
    args: &mut std::slice::Iter<'_, String>,
    flag: &'static str,
) -> Result<usize, OptionsError> {
    match args.next().map(|v| v.parse::<usize>()) {
        Some(Ok(v)) => Ok(v),
        _ => Err(OptionsError::Value(flag)),
    }
}

fn take_ratio(
    args: &mut std::slice::Iter<'_, String>,
    flag: &'static str,
) -> Result<f64, OptionsError> {
    match args.next().map(|v| v.parse::<f64>()) {
        Some(Ok(v)) if (0.0..=1.0).contains(&v) => Ok(v),
        _ => Err(OptionsError::Ratio(flag)),
    }
}

fn take_path(
    args: &mut std::slice::Iter<'_, String>,
    flag: &'static str,
) -> Result<String, OptionsError> {
    match args.next() {
        Some(v) if !v.is_empty() => Ok(v.clone()),
        _ => Err(OptionsError::Path(flag)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<DaemonCommand, OptionsError> {
        let argv: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        DaemonCommand::parse(&argv)
    }

    fn serve(args: &[&str]) -> ServeOptions {
        match parse(args) {
            Ok(DaemonCommand::Serve(options)) => *options,
            other => panic!("expected a serve command, got {other:?}"),
        }
    }

    fn gen(args: &[&str]) -> GenOptions {
        match parse(args) {
            Ok(DaemonCommand::Gen(options)) => options,
            other => panic!("expected a gen command, got {other:?}"),
        }
    }

    #[test]
    fn missing_or_unknown_subcommand_is_a_usage_error() {
        assert_eq!(parse(&[]).unwrap_err(), OptionsError::Usage);
        assert_eq!(parse(&["frobnicate"]).unwrap_err(), OptionsError::Usage);
    }

    #[test]
    fn gen_requires_a_count() {
        assert_eq!(parse(&["gen"]).unwrap_err(), OptionsError::Usage);
        assert_eq!(
            parse(&["gen", "--seed", "7"]).unwrap_err(),
            OptionsError::Usage
        );
    }

    #[test]
    fn gen_parses_and_clamps_its_flags() {
        let options = gen(&[
            "gen",
            "--count",
            "12",
            "--seed",
            "7",
            "--hot-percent",
            "250",
        ]);
        assert_eq!(options.count, 12);
        assert_eq!(options.seed, 7);
        assert_eq!(options.hot_percent, 100, "hot-percent clamps to 100");
        assert_eq!(options.traffic_config().hot_percent, 100);
        assert_eq!(
            gen(&["gen", "--count", "3"]).hot_percent,
            TrafficConfig::default().hot_percent
        );
    }

    #[test]
    fn serve_defaults_match_the_service_defaults() {
        let options = serve(&["serve"]);
        let defaults = ServiceConfig::default();
        assert_eq!(options.service.workers, defaults.workers);
        assert_eq!(options.service.queue_depth, defaults.queue_depth);
        assert_eq!(options.service.cache, defaults.cache);
        assert!(!options.service.verify);
        assert!(!options.summary && !options.summary_json);
        assert!(options.metrics_file.is_none() && options.trace_file.is_none());
        assert!(options.snapshot_load.is_none() && options.snapshot_save.is_none());
        assert_eq!(options.snapshot_every, 0);
        assert!(options.input_path.is_none());
    }

    #[test]
    fn serve_maps_every_tuning_flag_onto_the_service_config() {
        let options = serve(&[
            "serve",
            "requests.jsonl",
            "--workers",
            "8",
            "--shards",
            "16",
            "--capacity",
            "512",
            "--queue-depth",
            "128",
            "--verify",
            "--verify-threads",
            "3",
            "--arena-cache-cap",
            "9",
            "--arena-mem-budget",
            "4096",
            "--session-cap",
            "32",
            "--incremental-fallback-ratio",
            "0.25",
            "--summary",
            "--summary-json",
            "--metrics-file",
            "m.prom",
            "--trace-file",
            "t.jsonl",
            "--snapshot-load",
            "warm.snap",
            "--snapshot-save",
            "save.snap",
            "--snapshot-every",
            "100",
        ]);
        assert_eq!(options.input_path.as_deref(), Some("requests.jsonl"));
        assert_eq!(options.service.workers, 8);
        assert_eq!(options.service.cache.shards, 16);
        assert_eq!(options.service.cache.capacity_per_shard, 512);
        assert_eq!(options.service.queue_depth, 128);
        assert!(options.service.verify);
        assert_eq!(options.service.verify_threads, 3);
        assert_eq!(options.service.arena_cache_capacity, 9);
        assert_eq!(options.service.arena_mem_budget, Some(4096));
        assert_eq!(options.service.session_capacity, 32);
        assert!((options.service.incremental_fallback_ratio - 0.25).abs() < 1e-12);
        assert!(options.summary && options.summary_json);
        assert_eq!(options.metrics_file.as_deref(), Some("m.prom"));
        assert_eq!(options.trace_file.as_deref(), Some("t.jsonl"));
        assert_eq!(options.snapshot_load.as_deref(), Some("warm.snap"));
        assert_eq!(options.snapshot_save.as_deref(), Some("save.snap"));
        assert_eq!(options.snapshot_every, 100);
    }

    #[test]
    fn serve_clamps_zero_valued_tuning_flags() {
        let options = serve(&[
            "serve",
            "--workers",
            "0",
            "--shards",
            "0",
            "--capacity",
            "0",
            "--queue-depth",
            "0",
            "--session-cap",
            "0",
            "--arena-mem-budget",
            "0",
        ]);
        assert_eq!(options.service.workers, 1);
        assert_eq!(options.service.cache.shards, 1);
        assert_eq!(options.service.cache.capacity_per_shard, 1);
        assert_eq!(options.service.queue_depth, 1);
        assert_eq!(options.service.session_capacity, 1);
        assert_eq!(options.service.arena_mem_budget, Some(1));
    }

    #[test]
    fn every_integer_flag_rejects_missing_and_malformed_values() {
        let serve_flags = [
            "--workers",
            "--shards",
            "--capacity",
            "--queue-depth",
            "--verify-threads",
            "--arena-cache-cap",
            "--arena-mem-budget",
            "--session-cap",
            "--snapshot-every",
        ];
        for flag in serve_flags {
            let err = parse(&["serve", flag]).unwrap_err();
            assert_eq!(err, OptionsError::Value(flag));
            assert_eq!(
                err.to_string(),
                format!("{flag} needs a non-negative integer value")
            );
            assert_eq!(
                parse(&["serve", flag, "banana"]).unwrap_err(),
                OptionsError::Value(flag)
            );
        }
        for flag in ["--count", "--seed", "--hot-percent"] {
            let err = parse(&["gen", flag]).unwrap_err();
            assert_eq!(err, OptionsError::Value(flag));
            assert_eq!(
                err.to_string(),
                format!("{flag} needs a non-negative integer value")
            );
            assert_eq!(
                parse(&["gen", flag, "-3"]).unwrap_err(),
                OptionsError::Value(flag)
            );
        }
    }

    #[test]
    fn the_fallback_ratio_rejects_out_of_range_and_malformed_values() {
        for bad in [
            &["serve", "--incremental-fallback-ratio"][..],
            &["serve", "--incremental-fallback-ratio", "1.5"][..],
            &["serve", "--incremental-fallback-ratio", "abc"][..],
        ] {
            let err = parse(bad).unwrap_err();
            assert_eq!(err, OptionsError::Ratio("--incremental-fallback-ratio"));
            assert_eq!(
                err.to_string(),
                "--incremental-fallback-ratio needs a ratio in 0.0..=1.0"
            );
        }
        assert!(parse(&["serve", "--incremental-fallback-ratio", "0.0"]).is_ok());
        assert!(parse(&["serve", "--incremental-fallback-ratio", "1.0"]).is_ok());
    }

    #[test]
    fn every_path_flag_rejects_missing_and_empty_values() {
        for flag in [
            "--metrics-file",
            "--trace-file",
            "--snapshot-load",
            "--snapshot-save",
        ] {
            let err = parse(&["serve", flag]).unwrap_err();
            assert_eq!(err, OptionsError::Path(flag));
            assert_eq!(err.to_string(), format!("{flag} needs a file path"));
            assert_eq!(
                parse(&["serve", flag, ""]).unwrap_err(),
                OptionsError::Path(flag)
            );
        }
    }

    #[test]
    fn snapshot_every_requires_a_save_path() {
        let err = parse(&["serve", "--snapshot-every", "50"]).unwrap_err();
        assert_eq!(
            err,
            OptionsError::Requires {
                flag: "--snapshot-every",
                requires: "--snapshot-save",
            }
        );
        assert_eq!(err.to_string(), "--snapshot-every requires --snapshot-save");
        // 0 disables autosave, so it is fine without a save path …
        assert!(parse(&["serve", "--snapshot-every", "0"]).is_ok());
        // … and any cadence is fine once a save path exists.
        assert!(parse(&[
            "serve",
            "--snapshot-every",
            "50",
            "--snapshot-save",
            "s.snap"
        ])
        .is_ok());
    }

    #[test]
    fn extra_positionals_and_unknown_flags_are_usage_errors() {
        assert_eq!(
            parse(&["serve", "a.jsonl", "b.jsonl"]).unwrap_err(),
            OptionsError::Usage
        );
        assert_eq!(
            parse(&["serve", "--frobnicate"]).unwrap_err(),
            OptionsError::Usage
        );
        assert_eq!(
            parse(&["gen", "--count", "1", "--workers", "2"]).unwrap_err(),
            OptionsError::Usage
        );
    }
}
