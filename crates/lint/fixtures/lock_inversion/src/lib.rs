//! Seeded lock-order inversion: `transfer` takes `ledger` then `audit`,
//! `reconcile` takes `audit` then `ledger`. Run both concurrently and
//! each can hold one lock while waiting forever on the other — the
//! classic AB/BA deadlock `systolic-lint`'s L-LOCK-CYCLE rule must catch.

use parking_lot::Mutex;

/// Two accounts guarded by separate locks.
pub struct Accounts {
    ledger: Mutex<Vec<i64>>,
    audit: Mutex<Vec<i64>>,
}

impl Accounts {
    /// Creates empty books.
    pub fn new() -> Self {
        Accounts {
            ledger: Mutex::new(Vec::new()),
            audit: Mutex::new(Vec::new()),
        }
    }

    /// Acquires `ledger`, then `audit`.
    pub fn transfer(&self, amount: i64) {
        let mut ledger = self.ledger.lock();
        let mut audit = self.audit.lock();
        ledger.push(amount);
        audit.push(amount);
    }

    /// Acquires `audit`, then `ledger` — the inversion.
    pub fn reconcile(&self) -> i64 {
        let audit = self.audit.lock();
        let ledger = self.ledger.lock();
        audit.iter().sum::<i64>() - ledger.iter().sum::<i64>()
    }
}

impl Default for Accounts {
    fn default() -> Self {
        Self::new()
    }
}
