//! `systolic-lint` — workspace static analysis for the systolic sources.
//!
//! The paper this workspace reproduces (Kung 1988) certifies
//! communication programs *statically*: prove the queue acquisition order
//! deadlock-free before running anything. The workspace itself has grown
//! real hand-rolled concurrency — a work-stealing verify scheduler, a
//! lock-free metrics registry, bounded-queue hand-offs — and this crate
//! holds that code to the same standard. It is a dependency-free,
//! token-level static-analysis engine with four rules:
//!
//! | code | checks |
//! |------|--------|
//! | `L-LOCK-CYCLE` | global lock acquisition-order graph has no cycles |
//! | `L-ATOMIC-ORDER` | atomic ops name an `Ordering`; `Relaxed` is justified |
//! | `L-PANIC-PATH` | no unjustified `unwrap`/`expect`/`panic!` on the serving path |
//! | `L-LEGACY-ANALYZE` | no direct calls to the legacy `analyze()` wrapper |
//!
//! Rule codes are stable and mirror the analyzer's `E-*` diagnostic
//! style; findings are suppressed either by in-source annotations
//! (`// lint: panic-ok(<reason>)`, `// lint: relaxed-ok(<reason>)`,
//! `// lint: lock-ok(<reason>)` — the reason is mandatory) or by
//! per-rule path allowlists in `lint.toml` (see [`config`]).
//!
//! The `systolic-lint` binary exits `0` on a clean tree, `1` on
//! findings, `2` on usage/configuration errors, and prints diagnostics
//! as human-readable text or machine-readable JSON (`--format json`).
//! CI gates on it; `cargo test` runs a self-check asserting the
//! workspace stays lint-clean.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
pub mod config;
pub mod lexer;
pub mod render;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

use config::Config;
use lexer::SourceFile;

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule code (`L-LOCK-CYCLE`, ...).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description of the defect.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// The result of one engine run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by `(path, line, rule)`.
    pub findings: Vec<Finding>,
    /// Findings silenced by annotations or allowlists.
    pub suppressed: u64,
    /// Number of files scanned.
    pub files: u64,
}

impl Report {
    /// `true` when the run produced no findings.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Collects findings and suppression counts during a rule's scan.
///
/// Rules report everything they see; the engine applies the per-rule
/// path allowlist afterwards, so a rule never needs to know the config.
#[derive(Debug, Default)]
pub struct Sink {
    findings: Vec<Finding>,
    suppressed: u64,
}

impl Sink {
    /// Records a finding.
    pub fn finding(&mut self, rule: &'static str, path: &str, line: u32, message: String) {
        self.findings.push(Finding {
            rule,
            path: path.to_owned(),
            line,
            message,
        });
    }

    /// Records an annotation-suppressed would-be finding.
    pub fn suppressed(&mut self) {
        self.suppressed += 1;
    }
}

/// One static-analysis rule.
///
/// A rule sees every in-scope [`SourceFile`] once via [`Rule::scan`], and
/// gets a [`Rule::finish`] call after the last file for whole-workspace
/// analyses (the lock-order rule builds its graph in `scan` and reports
/// cycles in `finish`). Implementations should:
///
/// * report through the [`Sink`] — never print;
/// * call [`Sink::suppressed`] when an in-source annotation silences a
///   would-be finding, so suppressions stay countable;
/// * skip tokens marked `test` unless the rule explicitly audits test
///   code (see `L-LEGACY-ANALYZE` for a rule that does);
/// * keep the code stable — it is the contract CI configs and
///   `lint.toml` sections key on.
pub trait Rule {
    /// Stable rule code, e.g. `L-LOCK-CYCLE`.
    fn code(&self) -> &'static str;
    /// One-line description for `--list-rules` and docs.
    fn summary(&self) -> &'static str;
    /// Scans one file, accumulating state and/or reporting findings.
    fn scan(&mut self, file: &SourceFile, sink: &mut Sink);
    /// Called once after every file was scanned; whole-workspace rules
    /// report here. The default does nothing.
    fn finish(&mut self, _sink: &mut Sink) {}
}

/// The analysis engine: walks sources, runs rules, applies allowlists.
pub struct Engine {
    config: Config,
    rules: Vec<Box<dyn Rule>>,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let codes: Vec<_> = self.rules.iter().map(|r| r.code()).collect();
        f.debug_struct("Engine").field("rules", &codes).finish()
    }
}

impl Engine {
    /// Creates an engine with the full built-in rule set.
    #[must_use]
    pub fn new(config: Config) -> Engine {
        Engine {
            config,
            rules: rules::default_rules(),
        }
    }

    /// Creates an engine with a caller-chosen rule set.
    #[must_use]
    pub fn with_rules(config: Config, rules: Vec<Box<dyn Rule>>) -> Engine {
        Engine { config, rules }
    }

    /// Restricts the engine to the rules whose codes are in `codes`.
    pub fn retain_rules(&mut self, codes: &[&str]) {
        self.rules.retain(|r| codes.contains(&r.code()));
    }

    /// Runs every rule over the `.rs` files under `root`'s configured
    /// scan roots.
    ///
    /// # Errors
    ///
    /// Returns a message if a scan root's directory walk fails outright;
    /// individual unreadable files are skipped.
    pub fn run(&mut self, root: &Path) -> Result<Report, String> {
        let mut files = Vec::new();
        for dir in &self.config.roots.clone() {
            collect_rust_files(&root.join(dir), &mut files);
        }
        files.sort();
        let sources: Vec<SourceFile> = files
            .iter()
            .filter_map(|path| {
                let rel = relative_path(root, path);
                if self.config.excluded(&rel) {
                    return None;
                }
                let text = std::fs::read_to_string(path).ok()?;
                Some(SourceFile::lex(&rel, &text))
            })
            .collect();
        Ok(self.run_sources(&sources))
    }

    /// Runs every rule over pre-lexed sources (the test entry point).
    pub fn run_sources(&mut self, sources: &[SourceFile]) -> Report {
        let mut report = Report {
            files: sources.len() as u64,
            ..Report::default()
        };
        for rule in &mut self.rules {
            let rc = self.config.rule(rule.code());
            if rc.disabled {
                continue;
            }
            let mut sink = Sink::default();
            for file in sources {
                if rc.in_scope(&file.path) {
                    rule.scan(file, &mut sink);
                }
            }
            rule.finish(&mut sink);
            report.suppressed += sink.suppressed;
            for finding in sink.findings {
                if rc.allowed(&finding.path) {
                    report.suppressed += 1;
                } else {
                    report.findings.push(finding);
                }
            }
        }
        report
            .findings
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        report
    }

    /// The engine's rules, for `--list-rules`.
    pub fn rules(&self) -> impl Iterator<Item = &dyn Rule> {
        self.rules.iter().map(AsRef::as_ref)
    }
}

/// Loads `lint.toml` from `root` if present, else the built-in defaults.
///
/// # Errors
///
/// Returns the config parse error message verbatim.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => Config::parse(&text),
        Err(_) => Ok(Config::default()),
    }
}

/// Runs a single rule over the workspace at `root` and panics with the
/// findings if any survive — the one-line form integration tests use:
///
/// ```no_run
/// systolic_lint::assert_rule_clean(env!("CARGO_MANIFEST_DIR"), "L-LEGACY-ANALYZE");
/// ```
///
/// # Panics
///
/// Panics listing every finding when the tree is not clean for `code`,
/// and on configuration errors.
pub fn assert_rule_clean(root: impl AsRef<Path>, code: &str) {
    let root = root.as_ref();
    let config = load_config(root).expect("lint.toml parses");
    let mut engine = Engine::new(config);
    engine.retain_rules(&[code]);
    let report = engine.run(root).expect("workspace scan succeeds");
    assert!(report.files > 0, "scan found no files — wrong root?");
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(
        report.clean(),
        "`{code}` findings in the workspace:\n{}",
        rendered.join("\n")
    );
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn relative_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// Runs one rule over in-memory sources with the default config.
    pub fn run_rule(rule: impl Rule + 'static, sources: &[(&str, &str)]) -> Report {
        let lexed: Vec<SourceFile> = sources
            .iter()
            .map(|(path, text)| SourceFile::lex(path, text))
            .collect();
        Engine::with_rules(Config::default(), vec![Box::new(rule)]).run_sources(&lexed)
    }

    #[test]
    fn engine_applies_scope_and_allowlists() {
        let mut config = Config::default();
        config.rules.insert(
            "L-PANIC-PATH".to_owned(),
            config::RuleConfig {
                paths: vec!["crates/service".to_owned()],
                allow: vec!["crates/service/src/json.rs".to_owned()],
                disabled: false,
            },
        );
        let sources = [
            ("crates/service/src/wire.rs", "fn f() { x.unwrap(); }"),
            ("crates/service/src/json.rs", "fn f() { x.unwrap(); }"),
            ("crates/core/src/plan.rs", "fn f() { x.unwrap(); }"),
        ];
        let lexed: Vec<SourceFile> = sources.iter().map(|(p, t)| SourceFile::lex(p, t)).collect();
        let report =
            Engine::with_rules(config, vec![Box::new(rules::PanicPathRule)]).run_sources(&lexed);
        // wire.rs: flagged. json.rs: allowlisted. core: out of scope.
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].path, "crates/service/src/wire.rs");
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn disabled_rule_reports_nothing() {
        let mut config = Config::default();
        config.rules.insert(
            "L-PANIC-PATH".to_owned(),
            config::RuleConfig {
                disabled: true,
                ..Default::default()
            },
        );
        let lexed = [SourceFile::lex("a.rs", "fn f() { x.unwrap(); }")];
        let report =
            Engine::with_rules(config, vec![Box::new(rules::PanicPathRule)]).run_sources(&lexed);
        assert!(report.clean());
    }
}
