//! `lint.toml`: scan roots, excludes, and per-rule scopes/allowlists.
//!
//! The parser understands the TOML subset the config actually needs —
//! `[section]` headers, `key = "string"`, `key = ["a", "b", ...]` (arrays
//! may span lines), `key = true|false`, and `#` comments — and rejects
//! anything else loudly so config typos surface as errors, not silently
//! ignored suppressions.
//!
//! ```toml
//! [lint]
//! roots = ["crates", "src"]
//! exclude = ["vendor", "crates/lint/fixtures"]
//!
//! [rule.L-PANIC-PATH]
//! paths = ["crates/service/src"]   # scope: only scan these prefixes
//! allow = ["crates/service/src/json.rs"]  # drop findings under these
//! enabled = true
//! ```

use std::collections::BTreeMap;

/// Per-rule configuration.
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// Path prefixes the rule is restricted to. Empty = every scanned file.
    pub paths: Vec<String>,
    /// Path prefixes whose findings are suppressed (counted, not shown).
    pub allow: Vec<String>,
    /// `false` disables the rule entirely.
    pub disabled: bool,
}

impl RuleConfig {
    /// `true` if the rule should scan `path` at all.
    pub fn in_scope(&self, path: &str) -> bool {
        self.paths.is_empty() || self.paths.iter().any(|p| path.starts_with(p.as_str()))
    }

    /// `true` if findings in `path` are allowlisted away.
    pub fn allowed(&self, path: &str) -> bool {
        self.allow.iter().any(|p| path.starts_with(p.as_str()))
    }
}

/// The whole lint configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories under the root to walk for `.rs` files.
    pub roots: Vec<String>,
    /// Path prefixes never scanned (fixtures, vendor shims, build output).
    pub exclude: Vec<String>,
    /// Per-rule-code overrides.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            roots: ["crates", "src", "examples", "tests", "benches"]
                .map(str::to_owned)
                .to_vec(),
            exclude: ["vendor", "target"].map(str::to_owned).to_vec(),
            rules: BTreeMap::new(),
        }
    }
}

impl Config {
    /// Looks up a rule's config; absent rules get the permissive default.
    pub fn rule(&self, code: &str) -> RuleConfig {
        self.rules.get(code).cloned().unwrap_or_default()
    }

    /// `true` if `path` falls under an excluded prefix.
    pub fn excluded(&self, path: &str) -> bool {
        self.exclude.iter().any(|p| path.starts_with(p.as_str()))
    }

    /// Parses the `lint.toml` subset described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for anything outside
    /// the supported subset, unknown sections, or unknown keys.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((i, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_owned();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("lint.toml:{}: {msg}", i + 1);
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_owned();
                if section != "lint" && !section.starts_with("rule.") {
                    return Err(err(&format!("unknown section [{section}]")));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err("expected `key = value` or `[section]`"));
            };
            let key = key.trim();
            let mut value = value.trim().to_owned();
            // Arrays may span lines: keep appending until brackets close.
            while value.starts_with('[') && !value.ends_with(']') {
                let Some((_, next)) = lines.next() else {
                    return Err(err("unterminated array"));
                };
                value.push_str(strip_comment(next).trim());
            }
            match (section.as_str(), key) {
                ("lint", "roots") => config.roots = parse_array(&value).map_err(|e| err(&e))?,
                ("lint", "exclude") => config.exclude = parse_array(&value).map_err(|e| err(&e))?,
                ("lint", _) => return Err(err(&format!("unknown key `{key}` in [lint]"))),
                (s, _) if s.starts_with("rule.") => {
                    let rule = config
                        .rules
                        .entry(s["rule.".len()..].to_owned())
                        .or_default();
                    match key {
                        "paths" => rule.paths = parse_array(&value).map_err(|e| err(&e))?,
                        "allow" => rule.allow = parse_array(&value).map_err(|e| err(&e))?,
                        "enabled" => rule.disabled = value == "false",
                        _ => return Err(err(&format!("unknown key `{key}` in [{s}]"))),
                    }
                }
                _ => return Err(err("key outside any [section]")),
            }
        }
        Ok(config)
    }
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `["a", "b"]` into its elements.
fn parse_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected an array, got `{value}`"))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        let s = part
            .strip_prefix('"')
            .and_then(|p| p.strip_suffix('"'))
            .ok_or_else(|| format!("array elements must be quoted strings, got `{part}`"))?;
        out.push(s.to_owned());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_scopes() {
        let text = r#"
# workspace lint config
[lint]
roots = ["crates", "src"]
exclude = ["vendor"]

[rule.L-PANIC-PATH]
paths = [
    "crates/service/src",  # the serving path
    "crates/sim/src",
]
allow = ["crates/service/src/json.rs"]
"#;
        let config = Config::parse(text).unwrap();
        assert_eq!(config.roots, vec!["crates", "src"]);
        assert!(config.excluded("vendor/rand/src/lib.rs"));
        let rule = config.rule("L-PANIC-PATH");
        assert!(rule.in_scope("crates/sim/src/engine.rs"));
        assert!(!rule.in_scope("crates/core/src/plan.rs"));
        assert!(rule.allowed("crates/service/src/json.rs"));
        assert!(!rule.allowed("crates/service/src/wire.rs"));
    }

    #[test]
    fn unknown_keys_and_sections_error() {
        assert!(Config::parse("[surprise]\n").is_err());
        assert!(Config::parse("[lint]\ntypo = [\"a\"]\n").is_err());
        assert!(Config::parse("[rule.L-X]\ntypo = [\"a\"]\n").is_err());
        assert!(Config::parse("loose = 1\n").is_err());
    }

    #[test]
    fn disabled_rule_and_defaults() {
        let config = Config::parse("[rule.L-LOCK-CYCLE]\nenabled = false\n").unwrap();
        assert!(config.rule("L-LOCK-CYCLE").disabled);
        assert!(!config.rule("L-PANIC-PATH").disabled);
        assert!(config.rule("L-PANIC-PATH").in_scope("anything.rs"));
    }
}
