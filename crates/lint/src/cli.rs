//! The `systolic-lint` command line.
//!
//! ```text
//! systolic-lint [--root DIR] [--config FILE] [--format human|json]
//!               [--rules L-A,L-B] [--list-rules]
//! ```
//!
//! Exit status: `0` clean, `1` findings, `2` usage or configuration
//! error. [`run`] is the testable entry point — the binary's `main` is a
//! one-line wrapper, and tests drive `run` with captured output to prove
//! exit codes (the fixture-inversion test asserts `1`).

use std::io::Write;
use std::path::PathBuf;

use crate::{config::Config, render, Engine};

/// Exit code for a clean tree.
pub const EXIT_CLEAN: i32 = 0;
/// Exit code when findings were reported.
pub const EXIT_FINDINGS: i32 = 1;
/// Exit code for usage, I/O, or configuration errors.
pub const EXIT_ERROR: i32 = 2;

const USAGE: &str = "usage: systolic-lint [--root DIR] [--config FILE] \
                     [--format human|json] [--rules L-A,L-B] [--list-rules]";

/// Parses `args` (without the program name), runs the engine, and writes
/// diagnostics to `out` and errors to `err`. Returns the process exit
/// code.
pub fn run(args: &[String], out: &mut dyn Write, err: &mut dyn Write) -> i32 {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut format = "human".to_owned();
    let mut rule_filter: Option<Vec<String>> = None;
    let mut list_rules = false;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        let result = match arg.as_str() {
            "--root" => value("--root").map(|v| root = PathBuf::from(v)),
            "--config" => value("--config").map(|v| config_path = Some(PathBuf::from(v))),
            "--format" => value("--format").map(|v| format = v),
            "--rules" => value("--rules").map(|v| {
                rule_filter = Some(v.split(',').map(|s| s.trim().to_owned()).collect());
            }),
            "--list-rules" => {
                list_rules = true;
                Ok(())
            }
            "--help" | "-h" => {
                let _ = writeln!(out, "{USAGE}");
                return EXIT_CLEAN;
            }
            other => Err(format!("unknown argument `{other}`\n{USAGE}")),
        };
        if let Err(message) = result {
            let _ = writeln!(err, "systolic-lint: {message}");
            return EXIT_ERROR;
        }
    }
    if format != "human" && format != "json" {
        let _ = writeln!(
            err,
            "systolic-lint: --format must be `human` or `json`\n{USAGE}"
        );
        return EXIT_ERROR;
    }

    let config = match &config_path {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))
            .and_then(|text| Config::parse(&text)),
        None => crate::load_config(&root),
    };
    let config = match config {
        Ok(config) => config,
        Err(message) => {
            let _ = writeln!(err, "systolic-lint: {message}");
            return EXIT_ERROR;
        }
    };

    let mut engine = Engine::new(config);
    if list_rules {
        for rule in engine.rules() {
            let _ = writeln!(out, "{:<18} {}", rule.code(), rule.summary());
        }
        return EXIT_CLEAN;
    }
    if let Some(filter) = &rule_filter {
        let codes: Vec<&str> = filter.iter().map(String::as_str).collect();
        engine.retain_rules(&codes);
    }

    let report = match engine.run(&root) {
        Ok(report) => report,
        Err(message) => {
            let _ = writeln!(err, "systolic-lint: {message}");
            return EXIT_ERROR;
        }
    };
    if report.files == 0 {
        let _ = writeln!(
            err,
            "systolic-lint: no .rs files under {} — wrong --root?",
            root.display()
        );
        return EXIT_ERROR;
    }
    let rendered = if format == "json" {
        render::json(&report) + "\n"
    } else {
        render::human(&report)
    };
    let _ = out.write_all(rendered.as_bytes());
    if report.clean() {
        EXIT_CLEAN
    } else {
        EXIT_FINDINGS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_args(args: &[&str]) -> (i32, String, String) {
        let args: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        let mut out = Vec::new();
        let mut err = Vec::new();
        let code = run(&args, &mut out, &mut err);
        (
            code,
            String::from_utf8(out).unwrap(),
            String::from_utf8(err).unwrap(),
        )
    }

    #[test]
    fn unknown_flag_is_a_usage_error() {
        let (code, _, err) = run_args(&["--frobnicate"]);
        assert_eq!(code, EXIT_ERROR);
        assert!(err.contains("usage:"));
    }

    #[test]
    fn bad_format_is_a_usage_error() {
        let (code, _, err) = run_args(&["--format", "xml"]);
        assert_eq!(code, EXIT_ERROR);
        assert!(err.contains("--format"));
    }

    #[test]
    fn missing_root_is_an_error() {
        let (code, _, err) = run_args(&["--root", "/nonexistent/systolic"]);
        assert_eq!(code, EXIT_ERROR);
        assert!(err.contains("no .rs files"));
    }

    #[test]
    fn list_rules_names_all_codes() {
        let (code, out, _) = run_args(&["--list-rules"]);
        assert_eq!(code, EXIT_CLEAN);
        for rule in [
            "L-LOCK-CYCLE",
            "L-ATOMIC-ORDER",
            "L-PANIC-PATH",
            "L-LEGACY-ANALYZE",
        ] {
            assert!(out.contains(rule), "missing {rule} in:\n{out}");
        }
    }

    #[test]
    fn help_prints_usage_and_exits_clean() {
        let (code, out, _) = run_args(&["--help"]);
        assert_eq!(code, EXIT_CLEAN);
        assert!(out.contains("usage:"));
    }
}
