//! A minimal Rust tokenizer for rule scanning.
//!
//! The lexer produces a flat token stream of identifiers, punctuation and
//! literal placeholders with line numbers, strips comments (collecting
//! `// lint: <tag>(<reason>)` annotations as it goes), and marks the token
//! ranges of `#[test]` / `#[cfg(test)]` items so rules can skip test code.
//! It is deliberately not a parser: rules work on token patterns, which is
//! exactly the granularity the acquisition-order and panic-surface checks
//! need, and it keeps the engine dependency-free.

/// What kind of token was lexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`self`, `fn`, `lock`, `Ordering`, ...).
    Ident,
    /// A single punctuation character (`.`, `(`, `{`, `;`, ...).
    Punct,
    /// A literal (string, char, number). The text is not preserved;
    /// literals only matter as "not an identifier" for pattern matching.
    Literal,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Identifier text, or the punctuation character as a string.
    /// Empty for literals.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// `true` when the token sits inside a `#[test]` function or a
    /// `#[cfg(test)]` item (rules that audit production code skip these).
    pub test: bool,
}

impl Token {
    /// `true` if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// `true` if this token is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

/// An in-source suppression: `// lint: <tag>(<reason>)`.
///
/// An annotation covers findings on its own line and on the line
/// immediately below it (so it can sit on the line above a long
/// expression).
#[derive(Debug, Clone)]
pub struct Annotation {
    /// 1-based line the comment appears on.
    pub line: u32,
    /// The tag, e.g. `panic-ok` or `relaxed-ok`.
    pub tag: String,
    /// The justification between the parentheses. Rules reject empty
    /// reasons: a suppression must say *why*.
    pub reason: String,
}

/// One lexed source file, ready for rule scanning.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// The token stream (comments stripped, test ranges marked).
    pub tokens: Vec<Token>,
    /// `lint:` annotations collected from comments.
    pub annotations: Vec<Annotation>,
}

impl SourceFile {
    /// Lexes `text` into a scannable file.
    pub fn lex(path: &str, text: &str) -> SourceFile {
        let mut lexer = Lexer {
            chars: text.chars().collect(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
            annotations: Vec::new(),
        };
        lexer.run();
        let mut file = SourceFile {
            path: path.to_owned(),
            tokens: lexer.tokens,
            annotations: lexer.annotations,
        };
        mark_test_ranges(&mut file.tokens);
        file
    }

    /// `true` if an annotation with `tag` (and a non-empty reason) covers
    /// `line` — i.e. sits on that line or the one directly above it.
    pub fn annotated(&self, line: u32, tag: &str) -> bool {
        self.annotations
            .iter()
            .any(|a| a.tag == tag && !a.reason.is_empty() && (a.line == line || a.line + 1 == line))
    }
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
    annotations: Vec<Annotation>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.tokens.push(Token {
            kind,
            text,
            line,
            test: false,
        });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'r' | 'b' if self.raw_or_byte_string() => {}
                '\'' => self.char_or_lifetime(),
                _ if c.is_ascii_digit() => self.number(),
                _ if c.is_alphabetic() || c == '_' => {
                    let mut text = String::new();
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokenKind::Ident, text, line);
                }
                _ if c.is_whitespace() => {
                    self.bump();
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
    }

    /// Consumes `// ...` to end of line, harvesting `lint:` annotations.
    fn line_comment(&mut self) {
        let line = self.line;
        let mut body = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            body.push(c);
            self.bump();
        }
        if let Some(annotation) = parse_annotation(&body, line) {
            self.annotations.push(annotation);
        }
    }

    /// Consumes a (possibly nested) `/* ... */` comment.
    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Consumes a `"..."` string literal with escapes.
    fn string(&mut self) {
        let line = self.line;
        self.bump();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal, String::new(), line);
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#` and plain
    /// identifiers starting with `r`/`b`. Returns `true` if it consumed a
    /// literal (otherwise the caller lexes an identifier).
    fn raw_or_byte_string(&mut self) -> bool {
        let line = self.line;
        let mut ahead = 1;
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        if self.peek(0) == Some('b') && self.peek(1) == Some('"') {
            self.bump();
            self.string();
            return true;
        }
        let mut hashes = 0usize;
        while self.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(ahead + hashes) != Some('"') {
            return false; // an identifier like `r` / `radius` / `br`
        }
        for _ in 0..ahead + hashes + 1 {
            self.bump();
        }
        // Scan for `"` followed by `hashes` hash marks.
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokenKind::Literal, String::new(), line);
        true
    }

    /// Distinguishes `'a'` / `'\n'` char literals from `'a` lifetimes.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // A lifetime is `'` + ident-start not followed by a closing quote.
        if let Some(c1) = self.peek(1) {
            if (c1.is_alphabetic() || c1 == '_') && self.peek(2) != Some('\'') {
                self.bump(); // the quote; the identifier lexes next round
                return;
            }
        }
        self.bump();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal, String::new(), line);
    }

    /// Consumes a numeric literal (digits, `_`, hex/suffix letters).
    fn number(&mut self) {
        let line = self.line;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Literal, String::new(), line);
    }
}

/// Parses `lint: <tag>(<reason>)` out of a line-comment body.
fn parse_annotation(body: &str, line: u32) -> Option<Annotation> {
    let at = body.find("lint:")?;
    let rest = body[at + "lint:".len()..].trim_start();
    let open = rest.find('(')?;
    let close = rest.rfind(')')?;
    if close < open {
        return None;
    }
    let tag = rest[..open].trim();
    if tag.is_empty() || !tag.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return None;
    }
    Some(Annotation {
        line,
        tag: tag.to_owned(),
        reason: rest[open + 1..close].trim().to_owned(),
    })
}

/// Marks tokens belonging to `#[test]` / `#[cfg(test)]` items.
///
/// On seeing an attribute whose tokens include the identifier `test`, the
/// scanner swallows any further attributes, then marks the following item
/// through its body (`{ ... }`) or declaration-terminating `;` — tracking
/// parenthesis/bracket nesting so `fn f(x: [u8; 2])` does not end early.
fn mark_test_ranges(tokens: &mut [Token]) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let (attr_end, is_test) = scan_attribute(tokens, i + 1);
            if is_test {
                let mut j = attr_end;
                // Swallow trailing attributes (`#[cfg(test)] #[allow(..)]`).
                while tokens.get(j).is_some_and(|t| t.is_punct('#'))
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    let (next_end, _) = scan_attribute(tokens, j + 1);
                    j = next_end;
                }
                let item_end = scan_item(tokens, j);
                for token in tokens.iter_mut().take(item_end).skip(i) {
                    token.test = true;
                }
                i = item_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
}

/// Scans one `[...]` attribute from its opening bracket; returns the index
/// past the closing bracket and whether the attribute mentions `test`.
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut is_test = false;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (i + 1, is_test);
            }
        } else if t.is_ident("test") {
            is_test = true;
        }
        i += 1;
    }
    (i, is_test)
}

/// Scans one item starting at `from`; returns the index past its end
/// (matching `}` of the first top-level block, or a top-level `;`).
fn scan_item(tokens: &[Token], from: usize) -> usize {
    let mut i = from;
    let mut nest = 0isize; // () and [] nesting before the body
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') {
            nest += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            nest -= 1;
        } else if nest == 0 && t.is_punct(';') {
            return i + 1;
        } else if nest == 0 && t.is_punct('{') {
            let mut depth = 0isize;
            while i < tokens.len() {
                if tokens[i].is_punct('{') {
                    depth += 1;
                } else if tokens[i].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                i += 1;
            }
            return i;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_puncts_with_lines() {
        let f = SourceFile::lex("x.rs", "fn main() {\n    a.lock();\n}\n");
        let idents: Vec<_> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert_eq!(idents, vec![("fn", 1), ("main", 1), ("a", 2), ("lock", 2)]);
    }

    #[test]
    fn comments_and_strings_are_invisible() {
        let src = "let a = \"lock() unwrap()\"; // b.lock()\n/* c.lock() */ let d = 1;\n";
        let f = SourceFile::lex("x.rs", src);
        assert!(!f.tokens.iter().any(|t| t.is_ident("lock")));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let s = r#\"un\"wrap()\"#; let c = 'x'; }";
        let f = SourceFile::lex("x.rs", src);
        assert!(!f.tokens.iter().any(|t| t.is_ident("wrap")));
        assert!(f.tokens.iter().any(|t| t.is_ident("a"))); // lifetime ident survives
    }

    #[test]
    fn annotations_parse_tag_and_reason() {
        let src = "x(); // lint: panic-ok(pool invariant (checked))\ny();\n";
        let f = SourceFile::lex("x.rs", src);
        assert_eq!(f.annotations.len(), 1);
        assert_eq!(f.annotations[0].tag, "panic-ok");
        assert_eq!(f.annotations[0].reason, "pool invariant (checked)");
        assert!(f.annotated(1, "panic-ok"));
        assert!(f.annotated(2, "panic-ok")); // covers the next line too
        assert!(!f.annotated(3, "panic-ok"));
        assert!(!f.annotated(1, "relaxed-ok"));
    }

    #[test]
    fn empty_reason_does_not_suppress() {
        let f = SourceFile::lex("x.rs", "x(); // lint: panic-ok()\n");
        assert!(!f.annotated(1, "panic-ok"));
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { a.unwrap(); }\n}\nfn tail() {}\n";
        let f = SourceFile::lex("x.rs", src);
        let unwrap = f.tokens.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert!(unwrap.test);
        let live = f.tokens.iter().find(|t| t.is_ident("live")).unwrap();
        assert!(!live.test);
        let tail = f.tokens.iter().find(|t| t.is_ident("tail")).unwrap();
        assert!(!tail.test);
    }

    #[test]
    fn test_fn_with_extra_attributes_is_marked() {
        let src = "#[test]\n#[allow(dead_code)]\nfn t(x: [u8; 2]) { b.unwrap(); }\nfn prod() { c.unwrap(); }\n";
        let f = SourceFile::lex("x.rs", src);
        let b = f.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert!(b.test);
        let c = f.tokens.iter().find(|t| t.is_ident("c")).unwrap();
        assert!(!c.test);
    }

    #[test]
    fn non_test_attribute_is_not_marked() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() { s.unwrap(); }\n";
        let f = SourceFile::lex("x.rs", src);
        assert!(f.tokens.iter().all(|t| !t.test));
    }
}
