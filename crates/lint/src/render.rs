//! Diagnostic rendering: human text and machine-readable JSON.
//!
//! The JSON shape is stable — CI uploads it as an artifact and trend
//! tooling may diff it between runs:
//!
//! ```json
//! {
//!   "tool": "systolic-lint",
//!   "clean": false,
//!   "files": 103,
//!   "suppressed": 41,
//!   "findings": [
//!     {"rule": "L-LOCK-CYCLE", "path": "crates/x.rs", "line": 12,
//!      "message": "..."}
//!   ]
//! }
//! ```

use crate::Report;

/// Renders the report as human-readable diagnostics plus a summary line.
#[must_use]
pub fn human(report: &Report) -> String {
    let mut out = String::new();
    for finding in &report.findings {
        out.push_str(&finding.to_string());
        out.push('\n');
    }
    out.push_str(&format!(
        "systolic-lint: {} file(s) scanned, {} finding(s), {} suppressed\n",
        report.files,
        report.findings.len(),
        report.suppressed
    ));
    out
}

/// Renders the report as one JSON object (see the module docs).
#[must_use]
pub fn json(report: &Report) -> String {
    let mut out = String::from("{");
    out.push_str("\"tool\":\"systolic-lint\",");
    out.push_str(&format!("\"clean\":{},", report.clean()));
    out.push_str(&format!("\"files\":{},", report.files));
    out.push_str(&format!("\"suppressed\":{},", report.suppressed));
    out.push_str("\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{}}}",
            escape(f.rule),
            escape(&f.path),
            f.line,
            escape(&f.message)
        ));
    }
    out.push_str("]}");
    out
}

/// JSON string escaping (quotes, backslashes, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;

    fn report() -> Report {
        Report {
            findings: vec![Finding {
                rule: "L-PANIC-PATH",
                path: "crates/x.rs".to_owned(),
                line: 7,
                message: "a \"quoted\" message".to_owned(),
            }],
            suppressed: 3,
            files: 11,
        }
    }

    #[test]
    fn human_lists_findings_and_summary() {
        let text = human(&report());
        assert!(text.contains("crates/x.rs:7: [L-PANIC-PATH]"));
        assert!(text.contains("11 file(s) scanned, 1 finding(s), 3 suppressed"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let text = json(&report());
        assert!(text.contains("\"clean\":false"));
        assert!(text.contains("\"rule\":\"L-PANIC-PATH\""));
        assert!(text.contains("a \\\"quoted\\\" message"));
        assert!(text.starts_with('{') && text.ends_with('}'));
    }

    #[test]
    fn clean_report_has_empty_findings_array() {
        let clean = Report {
            files: 2,
            ..Report::default()
        };
        assert!(
            json(&clean).contains("\"clean\":true,\"files\":2,\"suppressed\":0,\"findings\":[]")
        );
    }
}
