//! The `systolic-lint` binary: a one-line wrapper over [`systolic_lint::cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = systolic_lint::cli::run(&args, &mut std::io::stdout(), &mut std::io::stderr());
    std::process::exit(code);
}
