//! `L-ATOMIC-ORDER` — the atomic-ordering audit.
//!
//! Two checks over non-test code in the configured scope:
//!
//! 1. every atomic operation (`fetch_*`, `compare_exchange*`, `load`,
//!    `store`) must name its `Ordering` explicitly in the argument list —
//!    an ordering hidden behind a helper or default is unreviewable;
//! 2. every `Ordering::Relaxed` must carry a
//!    `// lint: relaxed-ok(<reason>)` annotation on its line or the line
//!    above. `Relaxed` on a cross-thread flag is the classic
//!    lost-visibility bug; the annotation forces the "why is no
//!    happens-before edge needed here?" argument into the source.
//!
//! `swap` is deliberately not in the mandatory set (`slice::swap` and
//! `mem::swap` are too common); `fetch_*` and `compare_exchange*` exist
//! only on atomics, and `load`/`store` collisions have not been observed
//! in this workspace — allowlist the file in `lint.toml` if one appears.

use crate::lexer::{SourceFile, Token, TokenKind};
use crate::{Rule, Sink};

/// Suppression tag for a justified `Relaxed`.
pub const RELAXED_OK: &str = "relaxed-ok";

const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// The atomic-ordering audit rule. Stateless across files.
#[derive(Debug, Default)]
pub struct AtomicOrderRule;

impl Rule for AtomicOrderRule {
    fn code(&self) -> &'static str {
        "L-ATOMIC-ORDER"
    }

    fn summary(&self) -> &'static str {
        "atomic ops must name an explicit Ordering; Relaxed requires a relaxed-ok justification"
    }

    fn scan(&mut self, file: &SourceFile, sink: &mut Sink) {
        let tokens = &file.tokens;
        let mut flagged_relaxed_lines: Vec<u32> = Vec::new();
        for i in 0..tokens.len() {
            let t = &tokens[i];
            if t.test {
                continue;
            }
            // Check 2: `Ordering::Relaxed` (or any `::Relaxed` path tail).
            if t.is_ident("Relaxed")
                && i >= 2
                && tokens[i - 1].is_punct(':')
                && tokens[i - 2].is_punct(':')
            {
                if file.annotated(t.line, RELAXED_OK) {
                    sink.suppressed();
                } else if !flagged_relaxed_lines.contains(&t.line) {
                    flagged_relaxed_lines.push(t.line);
                    sink.finding(
                        self.code(),
                        &file.path,
                        t.line,
                        "Ordering::Relaxed without a `// lint: relaxed-ok(<reason>)` \
                         justification — state why no happens-before edge is needed, \
                         or upgrade the ordering"
                            .to_owned(),
                    );
                }
            }
            // Check 1: atomic method calls must mention an Ordering.
            if t.is_punct('.')
                && tokens
                    .get(i + 1)
                    .is_some_and(|m| ATOMIC_METHODS.iter().any(|a| m.is_ident(a)))
                && tokens.get(i + 2).is_some_and(|p| p.is_punct('('))
                && !args_mention_ordering(tokens, i + 2)
            {
                let method = &tokens[i + 1];
                sink.finding(
                    self.code(),
                    &file.path,
                    method.line,
                    format!(
                        "atomic `{}` without an explicit memory `Ordering` in its \
                         arguments — name the ordering at the call site",
                        method.text
                    ),
                );
            }
        }
    }
}

/// Scans the argument list opening at `open` (a `(`) for an `Ordering`
/// path or a bare ordering name, up to the matching `)`.
fn args_mention_ordering(tokens: &[Token], open: usize) -> bool {
    let mut depth = 0isize;
    for t in &tokens[open..] {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if t.kind == TokenKind::Ident
            && (t.text == "Ordering" || ORDERINGS.iter().any(|o| t.text == *o))
        {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::run_rule;

    #[test]
    fn relaxed_without_annotation_is_flagged() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        let report = run_rule(AtomicOrderRule, &[("src/lib.rs", src)]);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("relaxed-ok"));
    }

    #[test]
    fn annotated_relaxed_is_suppressed_and_counted() {
        let src = "fn f(c: &AtomicU64) {\n    // lint: relaxed-ok(statistic; tearing tolerated)\n    c.fetch_add(1, Ordering::Relaxed);\n}";
        let report = run_rule(AtomicOrderRule, &[("src/lib.rs", src)]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn same_line_annotation_suppresses() {
        let src =
            "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); } // lint: relaxed-ok(counter read)";
        let report = run_rule(AtomicOrderRule, &[("src/lib.rs", src)]);
        assert!(report.findings.is_empty());
    }

    #[test]
    fn empty_reason_does_not_suppress() {
        let src = "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); } // lint: relaxed-ok()";
        let report = run_rule(AtomicOrderRule, &[("src/lib.rs", src)]);
        assert_eq!(report.findings.len(), 1);
    }

    #[test]
    fn fetch_add_without_ordering_is_flagged() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1); }";
        let report = run_rule(AtomicOrderRule, &[("src/lib.rs", src)]);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0]
            .message
            .contains("explicit memory `Ordering`"));
    }

    #[test]
    fn acquire_release_pass_without_annotation() {
        let src = "fn f(c: &AtomicBool) { c.store(true, Ordering::Release); while !c.load(Ordering::Acquire) {} }";
        let report = run_rule(AtomicOrderRule, &[("src/lib.rs", src)]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn fully_qualified_relaxed_is_flagged_once_per_line() {
        let src =
            "fn f(c: &AtomicU64) { c.fetch_update(Ordering::Relaxed, Ordering::Relaxed, g); }";
        let report = run_rule(AtomicOrderRule, &[("src/lib.rs", src)]);
        assert_eq!(report.findings.len(), 1);
    }

    #[test]
    fn test_code_is_skipped() {
        let src = "#[test]\nfn t() { c.fetch_add(1, Ordering::Relaxed); }\n";
        let report = run_rule(AtomicOrderRule, &[("src/lib.rs", src)]);
        assert!(report.findings.is_empty());
    }
}
