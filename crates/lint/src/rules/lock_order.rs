//! `L-LOCK-CYCLE` — the paper's Theorem 1, turned on the implementation.
//!
//! The analyzer certifies communication programs by proving the queue
//! acquisition order acyclic; this rule applies the same idea to the
//! workspace's own locks. It scans every function for `parking_lot` /
//! `std::sync` `Mutex`/`RwLock` acquisitions (`.lock()`, `.read()`,
//! `.write()` with no arguments) on *named* fields and statics, tracks
//! which guards are still live when the next lock is taken, accumulates a
//! global acquisition-order graph, and reports every cycle as a potential
//! deadlock — plus any re-acquisition of a lock already held (self-cycle:
//! `parking_lot` locks are not reentrant).
//!
//! Lock identity is the field or static name that owns the lock
//! (`self.state.lock()` and `inner.state.lock()` are both lock `state`).
//! That is deliberately conservative: two types with a same-named lock
//! field merge into one node, which can only add edges, never hide one.
//! Receivers that are bare locals or method-call results (`shard.lock()`,
//! `self.shard_of(k).lock()`) are skipped — the instance cannot be named.
//!
//! Guard lifetime heuristic: a `let`-bound guard lives to the end of its
//! enclosing block (or an explicit `drop(guard)`); a temporary
//! (`x.lock().push(..)`) lives to the end of its statement. Acquisitions
//! annotated `// lint: lock-ok(<reason>)` are excluded from the graph.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{SourceFile, Token, TokenKind};
use crate::{Rule, Sink};

/// Suppression tag excluding one acquisition from the graph.
pub const LOCK_OK: &str = "lock-ok";

/// Where an ordered pair of acquisitions was observed.
#[derive(Debug, Clone)]
struct EdgeSite {
    path: String,
    line: u32,
    holder_line: u32,
    function: String,
}

/// The global acquisition-order graph, built across files.
#[derive(Debug, Default)]
pub struct LockOrderRule {
    /// `(held, acquired)` → first site that observed the pair.
    edges: BTreeMap<(String, String), EdgeSite>,
}

/// A lock currently held at some point in a function body.
struct Held {
    name: String,
    line: u32,
    /// Block depth the guard was bound at (`let` guards die when the
    /// depth drops below this; statement temporaries at the next `;`).
    depth: usize,
    let_bound: bool,
    var: Option<String>,
}

impl Rule for LockOrderRule {
    fn code(&self) -> &'static str {
        "L-LOCK-CYCLE"
    }

    fn summary(&self) -> &'static str {
        "lock acquisition-order cycles (potential deadlocks) and re-entrant acquisitions"
    }

    fn scan(&mut self, file: &SourceFile, sink: &mut Sink) {
        let tokens = &file.tokens;
        let mut i = 0;
        while i < tokens.len() {
            if tokens[i].is_ident("fn") && !tokens[i].test {
                let name = tokens
                    .get(i + 1)
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map_or_else(|| "?".to_owned(), |t| t.text.clone());
                if let Some((body_start, body_end)) = fn_body(tokens, i) {
                    self.scan_body(file, &name, body_start, body_end, sink);
                    i = body_end;
                    continue;
                }
            }
            i += 1;
        }
    }

    fn finish(&mut self, sink: &mut Sink) {
        // Self-edges first: re-acquiring a held, non-reentrant lock is a
        // deadlock on its own.
        for ((from, to), site) in &self.edges {
            if from == to {
                sink.finding(
                    self.code(),
                    &site.path,
                    site.line,
                    format!(
                        "lock `{from}` acquired in `{}` while already held (line {}); \
                         parking_lot locks are not reentrant — this self-deadlocks",
                        site.function, site.holder_line
                    ),
                );
            }
        }
        for cycle in find_cycles(&self.edges) {
            let mut parts = Vec::new();
            for pair in cycle.windows(2) {
                let site = &self.edges[&(pair[0].clone(), pair[1].clone())];
                parts.push(format!(
                    "`{}` then `{}` in `{}` ({}:{})",
                    pair[0], pair[1], site.function, site.path, site.line
                ));
            }
            let first = &self.edges[&(cycle[0].clone(), cycle[1].clone())];
            sink.finding(
                self.code(),
                &first.path,
                first.line,
                format!(
                    "lock acquisition order cycle {} — potential deadlock; \
                     acquired as: {}",
                    cycle.join(" -> "),
                    parts.join(", ")
                ),
            );
        }
        self.edges.clear();
    }
}

impl LockOrderRule {
    fn scan_body(
        &mut self,
        file: &SourceFile,
        function: &str,
        start: usize,
        end: usize,
        _sink: &mut Sink,
    ) {
        let tokens = &file.tokens;
        let mut held: Vec<Held> = Vec::new();
        let mut depth = 0usize;
        let mut stmt_start = start;
        let mut i = start;
        while i < end {
            let t = &tokens[i];
            if t.is_punct('{') {
                depth += 1;
                stmt_start = i + 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                held.retain(|h| if h.let_bound { h.depth <= depth } else { false });
                stmt_start = i + 1;
            } else if t.is_punct(';') {
                held.retain(|h| h.let_bound || h.depth != depth);
                stmt_start = i + 1;
            } else if t.is_ident("drop")
                && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
                && tokens.get(i + 3).is_some_and(|t| t.is_punct(')'))
            {
                if let Some(var) = tokens.get(i + 2).filter(|t| t.kind == TokenKind::Ident) {
                    held.retain(|h| h.var.as_deref() != Some(var.text.as_str()));
                }
            } else if is_acquisition(tokens, i) {
                // `i` sits on the `.` before lock/read/write.
                let line = tokens[i + 1].line;
                if let Some(name) = receiver_name(tokens, i) {
                    if !tokens[i].test && !file.annotated(line, LOCK_OK) {
                        for h in &held {
                            self.edges
                                .entry((h.name.clone(), name.clone()))
                                .or_insert_with(|| EdgeSite {
                                    path: file.path.clone(),
                                    line,
                                    holder_line: h.line,
                                    function: function.to_owned(),
                                });
                        }
                        let (let_bound, var) = binding(tokens, stmt_start, i);
                        held.push(Held {
                            name,
                            line,
                            depth,
                            let_bound,
                            var,
                        });
                    }
                }
                i += 3; // past `. lock (`
                continue;
            }
            i += 1;
        }
    }
}

/// `true` if `tokens[i]` is the `.` of `.lock()`, `.read()` or `.write()`
/// with an empty argument list (the `Mutex`/`RwLock` shape; `io::Read`
/// and `io::Write` calls always pass a buffer).
fn is_acquisition(tokens: &[Token], i: usize) -> bool {
    tokens[i].is_punct('.')
        && tokens
            .get(i + 1)
            .is_some_and(|t| t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct('('))
        && tokens.get(i + 3).is_some_and(|t| t.is_punct(')'))
}

/// Resolves the receiver chain ending at the `.` at `dot` to a lock name:
/// the final field of a `self.a.b` chain, or a `SCREAMING_CASE` static
/// (with or without a module path). Bare lowercase locals and call
/// results return `None`.
fn receiver_name(tokens: &[Token], dot: usize) -> Option<String> {
    // Walk backwards over `ident` / `.` / `::` links.
    let mut j = dot;
    let mut segments: Vec<&str> = Vec::new();
    loop {
        if j == 0 {
            break;
        }
        let prev = &tokens[j - 1];
        if prev.kind == TokenKind::Ident {
            segments.push(prev.text.as_str());
            j -= 1;
            // Links continue through `.` or `::`.
            if j >= 1 && tokens[j - 1].is_punct('.') {
                j -= 1;
            } else if j >= 2 && tokens[j - 1].is_punct(':') && tokens[j - 2].is_punct(':') {
                j -= 2;
            } else {
                break;
            }
        } else {
            // A `)` means the receiver is a call result; anything else
            // (operators, `(`, `=`, ...) ends the chain cleanly unless it
            // is empty.
            if prev.is_punct(')') {
                return None;
            }
            break;
        }
    }
    let field = *segments.first()?; // nearest to the `.lock()`
    let head = *segments.last()?;
    if is_screaming_case(field) {
        return Some(field.to_owned());
    }
    // Field access requires a `self`-rooted or local-rooted chain with at
    // least one `.`-link: `self.state`, `inner.latencies`. A bare local
    // (`shard`) has one segment and cannot be named.
    if segments.len() >= 2 && head.chars().next().is_some_and(char::is_lowercase) {
        return Some(field.to_owned());
    }
    None
}

fn is_screaming_case(s: &str) -> bool {
    s.len() > 1
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && s.chars().any(|c| c.is_ascii_uppercase())
}

/// Decides whether the acquisition starting a statement at `stmt_start`
/// is `let`-bound, and if so the bound variable's name.
fn binding(tokens: &[Token], stmt_start: usize, _dot: usize) -> (bool, Option<String>) {
    if !tokens.get(stmt_start).is_some_and(|t| t.is_ident("let")) {
        return (false, None);
    }
    let mut j = stmt_start + 1;
    if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let var = tokens
        .get(j)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone());
    (true, var)
}

/// Finds the body range of the `fn` whose keyword is at `fn_at`. Returns
/// `(start, end)` token indices just inside the braces, or `None` for a
/// bodyless declaration. Tracks `()`/`[]`/`<>`-free signature nesting the
/// simple way: the body is the first `{` outside parentheses/brackets.
fn fn_body(tokens: &[Token], fn_at: usize) -> Option<(usize, usize)> {
    let mut nest = 0isize;
    let mut i = fn_at + 1;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') {
            nest += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            nest -= 1;
        } else if nest == 0 && t.is_punct(';') {
            return None;
        } else if nest == 0 && t.is_punct('{') {
            let mut depth = 0isize;
            let start = i + 1;
            while i < tokens.len() {
                if tokens[i].is_punct('{') {
                    depth += 1;
                } else if tokens[i].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return Some((start, i));
                    }
                }
                i += 1;
            }
            return Some((start, tokens.len()));
        }
        i += 1;
    }
    None
}

/// Enumerates simple cycles in the edge set, canonicalized (rotated to
/// their smallest node, first node repeated at the end) and deduplicated.
/// Self-edges are excluded — they are reported separately.
fn find_cycles(edges: &BTreeMap<(String, String), EdgeSite>) -> Vec<Vec<String>> {
    let mut adjacency: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        if from != to {
            adjacency.entry(from).or_default().push(to);
        }
    }
    let mut found: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in adjacency.keys() {
        let mut path = vec![start];
        let mut on_path: BTreeSet<&str> = [start].into();
        dfs(start, &adjacency, &mut path, &mut on_path, &mut found);
    }
    found.into_iter().collect()
}

fn dfs<'a>(
    node: &'a str,
    adjacency: &BTreeMap<&'a str, Vec<&'a str>>,
    path: &mut Vec<&'a str>,
    on_path: &mut BTreeSet<&'a str>,
    found: &mut BTreeSet<Vec<String>>,
) {
    let Some(nexts) = adjacency.get(node) else {
        return;
    };
    for &next in nexts {
        if let Some(pos) = path.iter().position(|&n| n == next) {
            // Canonicalize: rotate the cycle to start at its minimum node.
            let cycle: Vec<&str> = path[pos..].to_vec();
            let min = cycle
                .iter()
                .enumerate()
                .min_by_key(|(_, n)| **n)
                .map_or(0, |(i, _)| i);
            let mut canon: Vec<String> = cycle[min..]
                .iter()
                .chain(cycle[..min].iter())
                .map(|s| (*s).to_owned())
                .collect();
            canon.push(canon[0].clone());
            found.insert(canon);
        } else if on_path.insert(next) {
            path.push(next);
            dfs(next, adjacency, path, on_path, found);
            path.pop();
            on_path.remove(next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::run_rule;

    const INVERSION: &str = r#"
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn forward(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *gb += *ga;
    }
    fn backward(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *ga += *gb;
    }
}
"#;

    #[test]
    fn two_lock_inversion_is_a_cycle() {
        let report = run_rule(LockOrderRule::default(), &[("src/lib.rs", INVERSION)]);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        let f = &report.findings[0];
        assert_eq!(f.rule, "L-LOCK-CYCLE");
        assert!(f.message.contains("a -> b -> a"), "{}", f.message);
        assert!(f.message.contains("forward") && f.message.contains("backward"));
    }

    #[test]
    fn cross_file_inversion_is_found() {
        let forward =
            "fn f(inner: &Inner) { let g = inner.plans.lock(); let h = inner.stats.lock(); }";
        let backward = "fn g(x: &Inner) { let s = x.stats.lock(); let p = x.plans.lock(); }";
        let report = run_rule(
            LockOrderRule::default(),
            &[("src/a.rs", forward), ("src/b.rs", backward)],
        );
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert!(report.findings[0]
            .message
            .contains("plans -> stats -> plans"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = r#"
impl S {
    fn one(&self) { let a = self.a.lock(); let b = self.b.lock(); }
    fn two(&self) { let a = self.a.lock(); let b = self.b.lock(); }
}
"#;
        let report = run_rule(LockOrderRule::default(), &[("src/lib.rs", src)]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn temporaries_release_at_statement_end() {
        // Each statement locks and releases; no pair is ever held together.
        let src = r#"
impl S {
    fn one(&self) { self.a.lock().push(1); self.b.lock().push(2); }
    fn two(&self) { self.b.lock().push(1); self.a.lock().push(2); }
}
"#;
        let report = run_rule(LockOrderRule::default(), &[("src/lib.rs", src)]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn scope_exit_and_drop_release_guards() {
        let src = r#"
impl S {
    fn scoped(&self) {
        { let a = self.a.lock(); }
        let b = self.b.lock();
    }
    fn dropped(&self) {
        let b = self.b.lock();
        drop(b);
        let a = self.a.lock();
    }
}
"#;
        let report = run_rule(LockOrderRule::default(), &[("src/lib.rs", src)]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn reentrant_acquisition_is_a_self_deadlock() {
        let src = "impl S { fn f(&self) { let a = self.m.lock(); let b = self.m.lock(); } }";
        let report = run_rule(LockOrderRule::default(), &[("src/lib.rs", src)]);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("not reentrant"));
    }

    #[test]
    fn statics_participate_in_the_graph() {
        let src = r#"
fn f() { let g = GLOBAL.lock(); let s = OTHER.lock(); }
fn g() { let s = OTHER.lock(); let g = GLOBAL.lock(); }
"#;
        let report = run_rule(LockOrderRule::default(), &[("src/lib.rs", src)]);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0]
            .message
            .contains("GLOBAL -> OTHER -> GLOBAL"));
    }

    #[test]
    fn unnameable_receivers_and_args_are_skipped() {
        // Call-result receivers, bare locals, and io-style calls with
        // arguments never enter the graph.
        let src = r#"
fn f(&self) {
    let s = self.shard_of(key).lock();
    let t = shard.lock();
    let n = reader.read(&mut buf);
    let w = self.rw.write();
}
"#;
        let report = run_rule(LockOrderRule::default(), &[("src/lib.rs", src)]);
        assert!(report.findings.is_empty());
    }

    #[test]
    fn lock_ok_annotation_suppresses_an_acquisition() {
        let src = r#"
impl S {
    fn forward(&self) { let a = self.a.lock(); let b = self.b.lock(); }
    fn backward(&self) {
        let b = self.b.lock();
        let a = self.a.lock(); // lint: lock-ok(b is a shard-private lock; see docs)
    }
}
"#;
        let report = run_rule(LockOrderRule::default(), &[("src/lib.rs", src)]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn test_code_is_ignored() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn f(&self) { let a = self.a.lock(); let b = self.b.lock(); }
    fn g(&self) { let b = self.b.lock(); let a = self.a.lock(); }
}
"#;
        let report = run_rule(LockOrderRule::default(), &[("src/lib.rs", src)]);
        assert!(report.findings.is_empty());
    }

    #[test]
    fn three_party_cycle_is_reported_once() {
        let src = r#"
fn f(x: &T) { let a = x.a.lock(); let b = x.b.lock(); }
fn g(x: &T) { let b = x.b.lock(); let c = x.c.lock(); }
fn h(x: &T) { let c = x.c.lock(); let a = x.a.lock(); }
"#;
        let report = run_rule(LockOrderRule::default(), &[("src/lib.rs", src)]);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert!(report.findings[0].message.contains("a -> b -> c -> a"));
    }
}
