//! `L-LEGACY-ANALYZE` — the workspace uses the staged `Analyzer` API.
//!
//! The legacy `analyze()` entry point survives as a documented
//! compatibility wrapper, but in-workspace code (crates, examples,
//! integration tests, benches) must go through `Analyzer` /
//! `AnalyzerSession`. This rule is the old ad-hoc source-scan gate
//! (`tests/no_legacy_analyze.rs`) rebuilt on the token stream: it flags
//! the identifier `analyze` used as a direct call — not a method call
//! (`session.analyze(..)`), not a definition (`fn analyze(..)`), and,
//! since the lexer strips them, never a comment or string mention.
//!
//! The wrapper's own module and the legacy-parity property tests are
//! allowlisted in `lint.toml`, not here: which callers are exempt is
//! workspace policy, not rule logic.

use crate::lexer::{SourceFile, TokenKind};
use crate::{Rule, Sink};

/// The legacy-API gate rule. Stateless across files.
#[derive(Debug, Default)]
pub struct LegacyAnalyzeRule;

impl Rule for LegacyAnalyzeRule {
    fn code(&self) -> &'static str {
        "L-LEGACY-ANALYZE"
    }

    fn summary(&self) -> &'static str {
        "no direct calls to the legacy analyze() entry point; use the Analyzer API"
    }

    fn scan(&mut self, file: &SourceFile, sink: &mut Sink) {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            let t = &tokens[i];
            if t.kind != TokenKind::Ident || t.text != "analyze" {
                continue;
            }
            if !tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                continue;
            }
            if i >= 1 && (tokens[i - 1].is_punct('.') || tokens[i - 1].is_ident("fn")) {
                continue; // method call or definition
            }
            sink.finding(
                self.code(),
                &file.path,
                t.line,
                "direct call to the legacy `analyze()` entry point — migrate to \
                 `Analyzer` (see the systolic_core migration docs)"
                    .to_owned(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::run_rule;

    #[test]
    fn direct_and_qualified_calls_are_flagged() {
        let src =
            "fn f() { let a = analyze(&p, &t, &c); let b = systolic_core::analyze(&p, &t, &c); }";
        let report = run_rule(LegacyAnalyzeRule, &[("src/lib.rs", src)]);
        assert_eq!(report.findings.len(), 2);
    }

    #[test]
    fn methods_definitions_longer_idents_and_strings_pass() {
        let src = r#"
pub fn analyze(&self, program: &Program) {}
fn f() {
    analyzer.analyze(&p);
    session.reanalyze(&p);
    let s = "analyze(";
    let analyzer = Analyzer::new(c);
}
"#;
        let report = run_rule(LegacyAnalyzeRule, &[("src/lib.rs", src)]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn test_code_is_still_scanned() {
        // Unlike the panic/atomic rules, test code is NOT exempt: the
        // original gate existed to keep integration tests off the legacy
        // API too.
        let src = "#[test]\nfn t() { let r = analyze(&p, &t, &c); }";
        let report = run_rule(LegacyAnalyzeRule, &[("src/lib.rs", src)]);
        assert_eq!(report.findings.len(), 1);
    }
}
