//! `L-PANIC-PATH` — the panic-surface rule.
//!
//! The serving path must not panic: one `unwrap` on a hostile input or a
//! transient condition takes a worker thread (and its reply channel) with
//! it. This rule flags `.unwrap()`, `.expect(..)`, `panic!`, `todo!` and
//! `unimplemented!` in non-test code within the configured scope, unless
//! the line carries a `// lint: panic-ok(<reason>)` justification — the
//! written reason is the reviewable claim that the panic is a programmer
//! error (broken invariant), not a reachable runtime state.
//!
//! `self.expect(..)` / `self.unwrap(..)` are skipped: a call on bare
//! `self` is the type's own method (e.g. a parser's `expect`), not
//! `Option`/`Result` handling.

use crate::lexer::{SourceFile, Token, TokenKind};
use crate::{Rule, Sink};

/// Suppression tag for a justified panic site.
pub const PANIC_OK: &str = "panic-ok";

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// The panic-surface rule. Stateless across files.
#[derive(Debug, Default)]
pub struct PanicPathRule;

impl Rule for PanicPathRule {
    fn code(&self) -> &'static str {
        "L-PANIC-PATH"
    }

    fn summary(&self) -> &'static str {
        "no unwrap/expect/panic!/todo! on the serving path without a panic-ok justification"
    }

    fn scan(&mut self, file: &SourceFile, sink: &mut Sink) {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            let t = &tokens[i];
            if t.test || t.kind != TokenKind::Ident {
                continue;
            }
            let flagged = if PANIC_METHODS.iter().any(|m| t.text == *m) {
                is_method_call(tokens, i) && !receiver_is_bare_self(tokens, i)
            } else if PANIC_MACROS.iter().any(|m| t.text == *m) {
                tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
            } else {
                false
            };
            if !flagged {
                continue;
            }
            if file.annotated(t.line, PANIC_OK) {
                sink.suppressed();
            } else {
                sink.finding(
                    self.code(),
                    &file.path,
                    t.line,
                    format!(
                        "`{}` on the serving path — convert to an error path, or \
                         justify with `// lint: panic-ok(<reason>)` if this is an \
                         unreachable invariant",
                        if PANIC_MACROS.iter().any(|m| t.text == *m) {
                            format!("{}!", t.text)
                        } else {
                            format!(".{}()", t.text)
                        }
                    ),
                );
            }
        }
    }
}

/// `tokens[i]` is a `.method(` call (not a definition or a path item).
fn is_method_call(tokens: &[Token], i: usize) -> bool {
    i >= 1 && tokens[i - 1].is_punct('.') && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
}

/// `true` for `self.expect(..)` — a call on bare `self`, which is the
/// enclosing type's own method, not `Option::expect`.
fn receiver_is_bare_self(tokens: &[Token], i: usize) -> bool {
    i >= 2 && tokens[i - 2].is_ident("self") && (i == 2 || !tokens[i - 3].is_punct('.'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::run_rule;

    #[test]
    fn unwrap_and_expect_are_flagged() {
        let src = "fn f() { let a = x.unwrap(); let b = y.expect(\"present\"); }";
        let report = run_rule(PanicPathRule, &[("src/lib.rs", src)]);
        assert_eq!(report.findings.len(), 2);
        assert!(report.findings[0].message.contains(".unwrap()"));
    }

    #[test]
    fn panic_family_macros_are_flagged() {
        let src = "fn f() { panic!(\"boom\"); }\nfn g() { todo!() }\nfn h() { unimplemented!() }";
        let report = run_rule(PanicPathRule, &[("src/lib.rs", src)]);
        assert_eq!(report.findings.len(), 3);
    }

    #[test]
    fn panic_inside_unwrap_or_else_is_flagged_once() {
        let src = "fn f() { x.unwrap_or_else(|| panic!(\"no queue {index}\")); }";
        let report = run_rule(PanicPathRule, &[("src/lib.rs", src)]);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert!(report.findings[0].message.contains("panic!"));
    }

    #[test]
    fn annotation_suppresses_and_counts() {
        let src = "fn f() { x.unwrap(); } // lint: panic-ok(checked two lines up)";
        let report = run_rule(PanicPathRule, &[("src/lib.rs", src)]);
        assert!(report.findings.is_empty());
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn previous_line_annotation_suppresses() {
        let src = "fn f() {\n    // lint: panic-ok(pool invariant)\n    x.unwrap();\n}";
        let report = run_rule(PanicPathRule, &[("src/lib.rs", src)]);
        assert!(report.findings.is_empty());
    }

    #[test]
    fn self_expect_is_the_types_own_method() {
        let src = "impl P { fn f(&mut self) { self.expect(b'{'); } }";
        let report = run_rule(PanicPathRule, &[("src/lib.rs", src)]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn chained_expect_after_self_field_is_flagged() {
        let src = "impl P { fn f(&self) { self.inner.expect(\"set\"); } }";
        let report = run_rule(PanicPathRule, &[("src/lib.rs", src)]);
        assert_eq!(report.findings.len(), 1);
    }

    #[test]
    fn unwrap_or_variants_are_error_paths_not_panics() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_default(); z.unwrap_or_else(|| 1); }";
        let report = run_rule(PanicPathRule, &[("src/lib.rs", src)]);
        assert!(report.findings.is_empty());
    }

    #[test]
    fn test_code_and_strings_are_skipped() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn prod() { let s = \"unwrap()\"; }";
        let report = run_rule(PanicPathRule, &[("src/lib.rs", src)]);
        assert!(report.findings.is_empty());
    }
}
