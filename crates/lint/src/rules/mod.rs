//! The rule set. Each rule lives in its own module; [`default_rules`]
//! is the registry the engine and CLI instantiate.

pub mod atomic_order;
pub mod legacy_analyze;
pub mod lock_order;
pub mod panic_path;

pub use atomic_order::AtomicOrderRule;
pub use legacy_analyze::LegacyAnalyzeRule;
pub use lock_order::LockOrderRule;
pub use panic_path::PanicPathRule;

use crate::Rule;

/// Instantiates every built-in rule, in stable order.
///
/// Adding a rule = adding a module with a [`Rule`] impl and listing it
/// here (plus a `[rule.<CODE>]` section in `lint.toml` if it needs a
/// scope or allowlist).
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(LockOrderRule::default()),
        Box::new(AtomicOrderRule),
        Box::new(PanicPathRule),
        Box::new(LegacyAnalyzeRule),
    ]
}
