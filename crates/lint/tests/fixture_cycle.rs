//! The acceptance gate in miniature: `systolic-lint` must exit non-zero
//! on the seeded two-lock inversion fixture, with an `L-LOCK-CYCLE`
//! finding naming both acquisition orders.

use std::path::Path;

fn fixture_root() -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures/lock_inversion")
        .display()
        .to_string()
}

fn run(args: &[String]) -> (i32, String, String) {
    let mut out = Vec::new();
    let mut err = Vec::new();
    let code = systolic_lint::cli::run(args, &mut out, &mut err);
    (
        code,
        String::from_utf8(out).unwrap(),
        String::from_utf8(err).unwrap(),
    )
}

#[test]
fn seeded_inversion_exits_nonzero_with_a_cycle_finding() {
    let args = vec!["--root".to_owned(), fixture_root()];
    let (code, out, err) = run(&args);
    assert_eq!(code, systolic_lint::cli::EXIT_FINDINGS, "stderr: {err}");
    assert!(out.contains("L-LOCK-CYCLE"), "{out}");
    assert!(out.contains("audit -> ledger -> audit"), "{out}");
    assert!(
        out.contains("transfer") && out.contains("reconcile"),
        "{out}"
    );
}

#[test]
fn json_format_reports_the_cycle_machine_readably() {
    let args = vec![
        "--root".to_owned(),
        fixture_root(),
        "--format".to_owned(),
        "json".to_owned(),
    ];
    let (code, out, _) = run(&args);
    assert_eq!(code, systolic_lint::cli::EXIT_FINDINGS);
    assert!(out.contains("\"clean\":false"), "{out}");
    assert!(out.contains("\"rule\":\"L-LOCK-CYCLE\""), "{out}");
    assert!(out.contains("\"path\":\"src/lib.rs\""), "{out}");
}

#[test]
fn rule_filter_excluding_lock_cycle_passes_the_fixture() {
    // The fixture's only defect is the inversion; with the lock rule
    // filtered out, the tree is clean — proving the exit code tracks
    // findings, not the fixture itself.
    let args = vec![
        "--root".to_owned(),
        fixture_root(),
        "--rules".to_owned(),
        "L-PANIC-PATH,L-ATOMIC-ORDER".to_owned(),
    ];
    let (code, out, _) = run(&args);
    assert_eq!(code, systolic_lint::cli::EXIT_CLEAN, "{out}");
}
