//! The self-check: the workspace's own sources must stay lint-clean
//! under the full rule set and the committed `lint.toml`. This is the
//! same invocation CI's `static-analysis` job gates on — if this test
//! fails, fix the finding or annotate it with a written reason; do not
//! widen an allowlist casually.

use std::path::Path;

#[test]
fn workspace_is_lint_clean_under_the_full_rule_set() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().expect("workspace root resolves");
    let args = vec!["--root".to_owned(), root.display().to_string()];
    let mut out = Vec::new();
    let mut err = Vec::new();
    let code = systolic_lint::cli::run(&args, &mut out, &mut err);
    let out = String::from_utf8(out).unwrap();
    assert_eq!(
        code,
        systolic_lint::cli::EXIT_CLEAN,
        "workspace has lint findings:\n{out}{}",
        String::from_utf8(err).unwrap()
    );
    // The run must have real coverage and real, countable suppressions
    // (every annotation in the sweep is a counted suppression).
    let files: u64 = out
        .split("systolic-lint: ")
        .nth(1)
        .and_then(|s| s.split(" file(s)").next())
        .and_then(|s| s.parse().ok())
        .expect("summary line present");
    assert!(files > 50, "scanned only {files} files — wrong root?");
}
