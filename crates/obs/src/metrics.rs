//! Lock-light metrics: atomic counters, gauges, and log2-bucket histograms
//! behind a [`Registry`] keyed by metric name + label set.
//!
//! # Design
//!
//! The hot path (`inc`, `add`, `set`, `record`) touches only atomics — no
//! locks. The registry's `Mutex` is taken once per *instrument lookup*, so
//! callers that care about throughput resolve their instruments up front and
//! hold the returned `Arc`s. Snapshots read the atomics with relaxed
//! ordering: they are statistically consistent (every recorded event is
//! eventually visible; `count`/`sum` are conserved) but not a point-in-time
//! cut across instruments.
//!
//! # Histogram error bound
//!
//! [`Histogram`] buckets values by their binary magnitude: value `0` lands
//! in bucket 0 and a value `v >= 1` lands in bucket `64 - v.leading_zeros()`,
//! i.e. bucket `i >= 1` covers the octave `[2^(i-1), 2^i - 1]`. Quantile
//! estimates ([`HistogramSnapshot::quantile`]) report the inclusive upper
//! bound of the bucket holding the requested rank, so a reported percentile
//! is **never an underestimate and overestimates by strictly less than 2x**
//! (one octave). `count`, `sum`, and `max` are exact (sums saturate at
//! `u64::MAX` instead of wrapping).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: bucket 0 for value 0, buckets `1..=64` for
/// each binary octave of a `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, otherwise the value's bit length.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (`u64::MAX` for the last one).
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // lint: relaxed-ok(pure statistic; fetch_add atomicity alone keeps the count exact)
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // lint: relaxed-ok(monitoring read; a slightly stale count is acceptable)
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge: a value that can move both ways (queue depth, window
/// size, mirrored cache statistics).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        // lint: relaxed-ok(gauge publishes no other data; last-writer-wins is the contract)
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        // lint: relaxed-ok(pure statistic; fetch_add atomicity alone keeps the sum exact)
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        // lint: relaxed-ok(monitoring read; a slightly stale value is acceptable)
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed log2-bucket histogram with lock-free recording.
///
/// See the [module docs](self) for the bucketing scheme and the one-octave
/// error bound on quantile estimates.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation. Lock-free: three atomic RMW ops plus a
    /// saturating CAS loop for the sum.
    pub fn record(&self, value: u64) {
        // Each field is an independent statistic: RMW atomicity alone keeps
        // it exact, and no reader orders across fields — snapshot() tolerates
        // tearing by design.
        // lint: relaxed-ok(independent statistic; RMW atomicity alone keeps it exact)
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(independent statistic)
        self.max.fetch_max(value, Ordering::Relaxed); // lint: relaxed-ok(independent statistic)
                                                      // Saturating add: `fetch_update` loops only under contention *and*
                                                      // near-overflow, which real workloads never hit.
        let _ = self
            .sum
            // lint: relaxed-ok(statistic; CAS atomicity alone keeps the sum exact)
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            });
    }

    /// Takes a statistically consistent snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        // The snapshot may tear across fields under concurrent recording;
        // each field is individually exact and the conservation property
        // tests bound the tear.
        HistogramSnapshot {
            // lint: relaxed-ok(field may tear vs others; individually exact)
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed), // lint: relaxed-ok(field may tear; exact alone)
            max: self.max.load(Ordering::Relaxed), // lint: relaxed-ok(field may tear; exact alone)
            // lint: relaxed-ok(field may tear vs others; individually exact)
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// An owned copy of a [`Histogram`]'s state, mergeable across instruments.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Total number of observations.
    pub count: u64,
    /// Saturating sum of all observed values.
    pub sum: u64,
    /// Largest observed value (exact).
    pub max: u64,
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Merges another snapshot into this one (counts add, sums saturate,
    /// maxes take the larger).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
    }

    /// Mean of the observed values (exact up to sum saturation).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate for `q` in `[0, 1]`: the inclusive upper bound of
    /// the bucket containing the ranked observation. Overestimates by less
    /// than 2x, never underestimates (see module docs).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                // The global max caps the last occupied bucket's bound: it
                // is both tighter and exact when the bucket holds the max.
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

/// Identity of an instrument: metric name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (Prometheus-style: `[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }

    /// Renders `name{label="value",...}` (bare `name` without labels).
    pub fn render(&self) -> String {
        let mut out = self.name.clone();
        out.push_str(&render_labels(&self.labels));
        out
    }
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named instruments.
///
/// Registration (`counter`/`gauge`/`histogram` and their `_with` label
/// variants) takes a `Mutex` and returns an `Arc` to the instrument —
/// repeated lookups of the same `(name, labels)` return the same instrument.
/// Hold the `Arc` on hot paths; the instruments themselves are lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    instruments: Mutex<BTreeMap<MetricKey, Instrument>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter `name` (no labels), creating it if absent.
    ///
    /// # Panics
    /// If `name` with these labels is already registered as a different
    /// instrument kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Returns the counter `name` with `labels`, creating it if absent.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = MetricKey::new(name, labels);
        // lint: panic-ok(a poisoned registry mutex means a panic mid-registration; unrecoverable)
        let mut map = self.instruments.lock().expect("metrics registry poisoned");
        let entry = map
            .entry(key.clone())
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::new())));
        match entry {
            Instrument::Counter(c) => Arc::clone(c),
            // lint: panic-ok(kind conflict is a programmer error; documented # Panics contract)
            other => panic!("{} already registered as {}", key.render(), other.kind()),
        }
    }

    /// Returns the gauge `name` (no labels), creating it if absent.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Returns the gauge `name` with `labels`, creating it if absent.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = MetricKey::new(name, labels);
        // lint: panic-ok(a poisoned registry mutex means a panic mid-registration; unrecoverable)
        let mut map = self.instruments.lock().expect("metrics registry poisoned");
        let entry = map
            .entry(key.clone())
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::new())));
        match entry {
            Instrument::Gauge(g) => Arc::clone(g),
            // lint: panic-ok(kind conflict is a programmer error; documented # Panics contract)
            other => panic!("{} already registered as {}", key.render(), other.kind()),
        }
    }

    /// Returns the histogram `name` (no labels), creating it if absent.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Returns the histogram `name` with `labels`, creating it if absent.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = MetricKey::new(name, labels);
        // lint: panic-ok(a poisoned registry mutex means a panic mid-registration; unrecoverable)
        let mut map = self.instruments.lock().expect("metrics registry poisoned");
        let entry = map
            .entry(key.clone())
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::new())));
        match entry {
            Instrument::Histogram(h) => Arc::clone(h),
            // lint: panic-ok(kind conflict is a programmer error; documented # Panics contract)
            other => panic!("{} already registered as {}", key.render(), other.kind()),
        }
    }

    /// Takes a snapshot of every registered instrument, sorted by key.
    pub fn snapshot(&self) -> RegistrySnapshot {
        // lint: panic-ok(a poisoned registry mutex means a panic mid-registration; unrecoverable)
        let map = self.instruments.lock().expect("metrics registry poisoned");
        let mut snap = RegistrySnapshot::default();
        for (key, instrument) in map.iter() {
            match instrument {
                Instrument::Counter(c) => snap.counters.push((key.clone(), c.get())),
                Instrument::Gauge(g) => snap.gauges.push((key.clone(), g.get())),
                Instrument::Histogram(h) => snap.histograms.push((key.clone(), h.snapshot())),
            }
        }
        snap
    }

    /// Renders the registry in the Prometheus text exposition format.
    ///
    /// Histograms emit cumulative `_bucket{le="..."}` series (up to the
    /// highest occupied bucket, then `le="+Inf"`), `_sum`, and `_count`.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

/// An owned, sorted snapshot of a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// `(key, value)` for every counter.
    pub counters: Vec<(MetricKey, u64)>,
    /// `(key, value)` for every gauge.
    pub gauges: Vec<(MetricKey, i64)>,
    /// `(key, snapshot)` for every histogram.
    pub histograms: Vec<(MetricKey, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// Looks up a counter value by name + labels; 0 if absent.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let key = MetricKey::new(name, labels);
        self.counters
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Sums every counter series sharing `name` regardless of labels.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Looks up a gauge value by name + labels; 0 if absent.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> i64 {
        let key = MetricKey::new(name, labels);
        self.gauges
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Looks up one histogram series by name + labels; empty if absent.
    pub fn histogram_value(&self, name: &str, labels: &[(&str, &str)]) -> HistogramSnapshot {
        let key = MetricKey::new(name, labels);
        self.histograms
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, h)| h.clone())
            .unwrap_or_default()
    }

    /// Merges every histogram series sharing `name` into one snapshot.
    pub fn histogram_total(&self, name: &str) -> HistogramSnapshot {
        let mut total = HistogramSnapshot::default();
        for (k, h) in &self.histograms {
            if k.name == name {
                total.merge(h);
            }
        }
        total
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: BTreeMap<&str, &'static str> = BTreeMap::new();
        for (key, _) in &self.counters {
            typed.entry(&key.name).or_insert("counter");
        }
        for (key, _) in &self.gauges {
            typed.entry(&key.name).or_insert("gauge");
        }
        for (key, _) in &self.histograms {
            typed.entry(&key.name).or_insert("histogram");
        }
        for (name, kind) in &typed {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            match *kind {
                "counter" => {
                    for (key, v) in self.counters.iter().filter(|(k, _)| k.name == *name) {
                        let _ = writeln!(out, "{} {v}", key.render());
                    }
                }
                "gauge" => {
                    for (key, v) in self.gauges.iter().filter(|(k, _)| k.name == *name) {
                        let _ = writeln!(out, "{} {v}", key.render());
                    }
                }
                _ => {
                    for (key, h) in self.histograms.iter().filter(|(k, _)| k.name == *name) {
                        render_prometheus_histogram(&mut out, key, h);
                    }
                }
            }
        }
        out
    }
}

fn render_prometheus_histogram(out: &mut String, key: &MetricKey, h: &HistogramSnapshot) {
    let last_occupied = h
        .buckets
        .iter()
        .rposition(|&n| n > 0)
        .unwrap_or(0)
        .min(HISTOGRAM_BUCKETS - 2);
    let mut cumulative = 0u64;
    for i in 0..=last_occupied {
        cumulative = cumulative.saturating_add(h.buckets[i]);
        let mut labels = key.labels.clone();
        labels.push(("le".to_string(), bucket_upper_bound(i).to_string()));
        labels.sort();
        let _ = writeln!(
            out,
            "{}_bucket{} {cumulative}",
            key.name,
            render_labels(&labels)
        );
    }
    let mut labels = key.labels.clone();
    labels.push(("le".to_string(), "+Inf".to_string()));
    labels.sort();
    let _ = writeln!(
        out,
        "{}_bucket{} {}",
        key.name,
        render_labels(&labels),
        h.count
    );
    let suffix = render_labels(&key.labels);
    let _ = writeln!(out, "{}_sum{suffix} {}", key.name, h.sum);
    let _ = writeln!(out, "{}_count{suffix} {}", key.name, h.count);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index((1u64 << 63) - 1), 63);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(63), (1u64 << 63) - 1);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_records_zero_one_max_saturating() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.max, u64::MAX);
        // Sum saturates instead of wrapping.
        assert_eq!(s.sum, u64::MAX);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[64], 2);
    }

    #[test]
    fn quantile_upper_bounds_within_one_octave() {
        let h = Histogram::new();
        for v in [100u64, 200, 300, 400, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        // p50 rank 3 => value 300, bucket [256,511] -> reported 511.
        let p50 = s.quantile(0.5);
        assert!((300..600).contains(&p50), "p50={p50}");
        // p100 is capped by the exact max.
        assert_eq!(s.quantile(1.0), 1000);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn quantile_never_underestimates() {
        let h = Histogram::new();
        let mut values: Vec<u64> = (0..200).map(|i| i * i + 1).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let s = h.snapshot();
        for q in [0.1, 0.25, 0.5, 0.9, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1];
            let est = s.quantile(q);
            assert!(est >= truth, "q={q}: est {est} < truth {truth}");
            assert!(est < truth * 2, "q={q}: est {est} >= 2x truth {truth}");
        }
    }

    #[test]
    fn snapshot_merge_conserves() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        a.record(9);
        b.record(1_000_000);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, 1_000_014);
        assert_eq!(merged.max, 1_000_000);
    }

    #[test]
    fn registry_returns_same_instrument_per_key() {
        let r = Registry::new();
        let c1 = r.counter_with("hits", &[("shard", "0")]);
        let c2 = r.counter_with("hits", &[("shard", "0")]);
        let c3 = r.counter_with("hits", &[("shard", "1")]);
        c1.inc();
        c2.inc();
        c3.inc();
        assert_eq!(c1.get(), 2);
        let snap = r.snapshot();
        assert_eq!(snap.counter_value("hits", &[("shard", "0")]), 2);
        assert_eq!(snap.counter_total("hits"), 3);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_panics_on_kind_mismatch() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn concurrent_records_conserve_count_and_sum() {
        let h = Arc::new(Histogram::new());
        let threads = 4;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * per_thread + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let s = h.snapshot();
        let n = threads * per_thread;
        assert_eq!(s.count, n);
        assert_eq!(s.sum, n * (n - 1) / 2);
        assert_eq!(s.buckets.iter().sum::<u64>(), n);
    }

    #[test]
    fn prometheus_rendering_shapes() {
        let r = Registry::new();
        r.counter("requests_total").add(3);
        r.gauge_with("depth", &[("queue", "verify")]).set(-2);
        let h = r.histogram_with("latency_micros", &[("stage", "plan")]);
        h.record(0);
        h.record(5);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total 3"));
        assert!(text.contains("depth{queue=\"verify\"} -2"));
        assert!(text.contains("# TYPE latency_micros histogram"));
        assert!(text.contains("latency_micros_bucket{le=\"0\",stage=\"plan\"} 1"));
        assert!(text.contains("latency_micros_bucket{le=\"7\",stage=\"plan\"} 2"));
        assert!(text.contains("latency_micros_bucket{le=\"+Inf\",stage=\"plan\"} 2"));
        assert!(text.contains("latency_micros_sum{stage=\"plan\"} 5"));
        assert!(text.contains("latency_micros_count{stage=\"plan\"} 2"));
    }
}
