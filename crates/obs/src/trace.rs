//! Lightweight span tracing: monotonic-clock spans with parent/child
//! nesting, per-request trace ids, and a bounded in-memory ring of recent
//! span events.
//!
//! A [`Tracer`] hands out ids from atomic counters and timestamps spans
//! against a single `Instant` epoch captured at construction, so span
//! `start_micros` values are mutually comparable and monotonic. Finished
//! spans land in a bounded ring (`Mutex<VecDeque>`): when full, the oldest
//! events are dropped and counted, so a long-lived service keeps the most
//! recent window instead of growing without bound.
//!
//! Spans are plain data — no lifetimes, no guards. A layer that wants its
//! children attributed starts a span, passes [`ActiveSpan::ctx`] down, and
//! finishes the span itself:
//!
//! ```
//! use systolic_obs::Tracer;
//!
//! let tracer = Tracer::new(1024);
//! let trace = tracer.new_trace();
//! let request = tracer.start(trace, None, "request");
//! let stage = tracer.start(trace, Some(request.id()), "routes");
//! tracer.finish(stage);
//! tracer.finish(request);
//! let events = tracer.snapshot();
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[0].name, "routes");
//! assert_eq!(events[0].parent, Some(events[1].span));
//! ```

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Identifies one request's span tree. Echoed on wire responses so a span
/// log can be joined against service output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one span within a tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// The (trace, parent-span) pair a layer passes down so children nest
/// correctly.
#[derive(Debug, Clone, Copy)]
pub struct SpanCtx {
    /// Trace the child spans belong to.
    pub trace: TraceId,
    /// Span to parent the children under.
    pub parent: SpanId,
}

/// An in-flight span. Plain data: finish it via [`Tracer::finish`].
#[derive(Debug)]
pub struct ActiveSpan {
    trace: TraceId,
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    start: Instant,
    start_micros: u64,
}

impl ActiveSpan {
    /// This span's id.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// This span's trace.
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// Context for parenting children under this span.
    pub fn ctx(&self) -> SpanCtx {
        SpanCtx {
            trace: self.trace,
            parent: self.id,
        }
    }
}

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// Parent span, if nested.
    pub parent: Option<SpanId>,
    /// Static span name (e.g. `"request"`, `"routes"`, `"verify"`).
    pub name: &'static str,
    /// Microseconds since the tracer's epoch at span start.
    pub start_micros: u64,
    /// Span duration in microseconds.
    pub duration_micros: u64,
}

impl SpanEvent {
    /// Renders the event as one JSON object (for JSONL span logs).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"trace\":{},\"span\":{},\"parent\":",
            self.trace.0, self.span.0
        );
        match self.parent {
            Some(p) => {
                let _ = write!(out, "{}", p.0);
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"name\":\"{}\",\"start_us\":{},\"dur_us\":{}}}",
            self.name, self.start_micros, self.duration_micros
        );
        out
    }
}

/// Issues trace/span ids and keeps a bounded ring of finished spans.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    capacity: usize,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<SpanEvent>>,
}

/// Default ring capacity: enough for several thousand requests' span trees.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

impl Default for Tracer {
    fn default() -> Self {
        Self::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl Tracer {
    /// Creates a tracer whose ring keeps at most `capacity` finished spans.
    pub fn new(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            next_trace: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 4096))),
        }
    }

    /// Allocates a fresh trace id.
    pub fn new_trace(&self) -> TraceId {
        // lint: relaxed-ok(id allocation; fetch_add atomicity alone guarantees uniqueness)
        TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed))
    }

    /// Starts a span under `trace`, optionally parented.
    pub fn start(&self, trace: TraceId, parent: Option<SpanId>, name: &'static str) -> ActiveSpan {
        let start = Instant::now();
        ActiveSpan {
            trace,
            // lint: relaxed-ok(id allocation; fetch_add atomicity alone guarantees uniqueness)
            id: SpanId(self.next_span.fetch_add(1, Ordering::Relaxed)),
            parent,
            name,
            start,
            start_micros: start.duration_since(self.epoch).as_micros() as u64,
        }
    }

    /// Finishes a span, recording it into the ring.
    pub fn finish(&self, span: ActiveSpan) {
        let duration = span.start.elapsed().as_micros() as u64;
        self.record(SpanEvent {
            trace: span.trace,
            span: span.id,
            parent: span.parent,
            name: span.name,
            start_micros: span.start_micros,
            duration_micros: duration,
        });
    }

    /// Pushes a prebuilt event into the ring (oldest dropped when full).
    pub fn record(&self, event: SpanEvent) {
        // lint: panic-ok(ring mutex poisoning means a panic mid-push; unrecoverable)
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(drop statistic)
        }
        ring.push_back(event);
    }

    /// Copies the ring's current contents, oldest first.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        // lint: panic-ok(ring mutex poisoning means a panic mid-push; unrecoverable)
        let ring = self.ring.lock().expect("trace ring poisoned");
        ring.iter().cloned().collect()
    }

    /// Drains the ring, returning its contents oldest first.
    pub fn drain(&self) -> Vec<SpanEvent> {
        // lint: panic-ok(ring mutex poisoning means a panic mid-push; unrecoverable)
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        ring.drain(..).collect()
    }

    /// Number of events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        // lint: relaxed-ok(monitoring read of a statistic; staleness acceptable)
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_serialize() {
        let tracer = Tracer::new(16);
        let trace = tracer.new_trace();
        let parent = tracer.start(trace, None, "request");
        let parent_id = parent.id();
        let child = tracer.start(trace, Some(parent_id), "plan");
        tracer.finish(child);
        tracer.finish(parent);

        let events = tracer.snapshot();
        assert_eq!(events.len(), 2);
        let child_ev = &events[0];
        let parent_ev = &events[1];
        assert_eq!(child_ev.parent, Some(parent_ev.span));
        assert_eq!(parent_ev.parent, None);
        assert_eq!(child_ev.trace, parent_ev.trace);
        assert!(child_ev.start_micros >= parent_ev.start_micros);

        let line = child_ev.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"name\":\"plan\""));
        assert!(line.contains(&format!("\"parent\":{}", parent_ev.span.0)));
        assert!(parent_ev.to_json_line().contains("\"parent\":null"));
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let tracer = Tracer::new(4);
        let trace = tracer.new_trace();
        for _ in 0..10 {
            let span = tracer.start(trace, None, "s");
            tracer.finish(span);
        }
        assert_eq!(tracer.snapshot().len(), 4);
        assert_eq!(tracer.dropped(), 6);
        // Oldest dropped: the survivors are the last four spans issued.
        let ids: Vec<u64> = tracer.snapshot().iter().map(|e| e.span.0).collect();
        assert_eq!(ids, vec![7, 8, 9, 10]);
        assert_eq!(tracer.drain().len(), 4);
        assert!(tracer.snapshot().is_empty());
    }

    #[test]
    fn trace_ids_are_unique() {
        let tracer = Tracer::default();
        let a = tracer.new_trace();
        let b = tracer.new_trace();
        assert_ne!(a, b);
    }
}
