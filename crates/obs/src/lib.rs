//! Observability spine for the systolic workspace: a lock-light metrics
//! registry and a lightweight span tracer, dependency-free (std only).
//!
//! The rest of the workspace shares **one** [`Obs`] bundle (an `Arc`'d pair
//! of [`Registry`] + [`Tracer`]): the analyzer times its pipeline stages
//! into per-stage histograms and counts diagnostics per code, the verify
//! scheduler and arena LRU record fan-out sizes and build/replay timings,
//! and the service exposes the whole registry as a Prometheus-style text
//! exposition or a JSON object per wire request.
//!
//! # Instruments
//!
//! * [`Counter`] — monotonic `u64`, lock-free `inc`/`add`.
//! * [`Gauge`] — signed value, lock-free `set`/`add`.
//! * [`Histogram`] — fixed log2-bucket histogram: value `v` lands in the
//!   bucket of its binary magnitude, so recording is three atomic ops and
//!   quantile estimates carry a documented **< 2x (one octave)
//!   overestimate, never an underestimate** (see [`metrics`]).
//!
//! Registration goes through [`Registry`] keyed by `(name, sorted labels)`;
//! the only lock is taken at registration, so hot paths hold the returned
//! `Arc`s and touch atomics only. Snapshots merge per-label series on
//! demand ([`RegistrySnapshot::histogram_total`]).
//!
//! # Spans
//!
//! [`Tracer`] issues per-request [`TraceId`]s and nests [`SpanEvent`]s via
//! parent span ids; finished spans land in a bounded in-memory ring (oldest
//! evicted, drops counted) and serialize to JSONL for `--trace-file`. See
//! [`trace`].
//!
//! ```
//! use systolic_obs::{names, Obs};
//!
//! let obs = Obs::new();
//! let hits = obs.registry().counter(names::ARENA_CACHE_HITS);
//! hits.inc();
//! let h = obs
//!     .registry()
//!     .histogram_with(names::ANALYZER_STAGE_DURATION, &[("stage", "plan")]);
//! h.record(42);
//! let text = obs.registry().render_prometheus();
//! assert!(text.contains("systolic_arena_cache_hits_total 1"));
//! assert!(text.contains("stage=\"plan\""));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod metrics;
pub mod trace;

pub use metrics::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, MetricKey,
    Registry, RegistrySnapshot, HISTOGRAM_BUCKETS,
};
pub use trace::{ActiveSpan, SpanCtx, SpanEvent, SpanId, TraceId, Tracer, DEFAULT_TRACE_CAPACITY};

/// Shared metric names, so producers in different crates write the same
/// series and consumers grep stable strings.
pub mod names {
    /// Histogram: per-stage analyzer pipeline duration, labeled `stage`.
    pub const ANALYZER_STAGE_DURATION: &str = "systolic_analyzer_stage_duration_micros";
    /// Counter: diagnostics pushed per stable code, labeled `code`.
    pub const ANALYZER_DIAGNOSTICS: &str = "systolic_analyzer_diagnostics_total";
    /// Counter: arena LRU hits (warm arena reused).
    pub const ARENA_CACHE_HITS: &str = "systolic_arena_cache_hits_total";
    /// Counter: arena LRU misses (arena built).
    pub const ARENA_CACHE_MISSES: &str = "systolic_arena_cache_misses_total";
    /// Counter: arenas evicted by the residency budget.
    pub const ARENA_CACHE_EVICTIONS: &str = "systolic_arena_cache_evictions_total";
    /// Histogram: wall time to build a fresh arena, in microseconds.
    pub const ARENA_BUILD_DURATION: &str = "systolic_arena_build_duration_micros";
    /// Histogram: wall time for one verify replay (in-place arena reset +
    /// cycle-stepped run), in microseconds.
    pub const VERIFY_REPLAY_DURATION: &str = "systolic_verify_replay_duration_micros";
    /// Histogram: simulated cycles per verify replay, labeled `topology`.
    pub const VERIFY_REPLAY_CYCLES: &str = "systolic_verify_replay_cycles";
    /// Counter: verify chase outcomes, labeled `topology` and `outcome`.
    pub const VERIFY_OUTCOMES: &str = "systolic_verify_outcomes_total";
    /// Counter: scheduler fan-outs dispatched.
    pub const SCHED_FANOUTS: &str = "systolic_scheduler_fanouts_total";
    /// Counter: verify tasks fanned out across all batches.
    pub const SCHED_ITEMS: &str = "systolic_scheduler_items_total";
    /// Histogram: tasks per scheduler fan-out.
    pub const SCHED_FANOUT_SIZE: &str = "systolic_scheduler_fanout_size";
    /// Counter: requests handled by the service.
    pub const SERVICE_REQUESTS: &str = "systolic_service_requests_total";
    /// Histogram: end-to-end `handle()` latency in microseconds.
    pub const SERVICE_HANDLE_DURATION: &str = "systolic_service_handle_duration_micros";
    /// Gauge: submitted-but-unclaimed requests in the worker queue.
    pub const SERVICE_QUEUE_DEPTH: &str = "systolic_service_queue_depth";
    /// Gauge: size of the most recent coalesced verify window.
    pub const SERVICE_COALESCED_WINDOW: &str = "systolic_service_coalesced_window";
    /// Gauge: plan-cache hits (mirrored from the sharded cache).
    pub const PLAN_CACHE_HITS: &str = "systolic_plan_cache_hits";
    /// Gauge: plan-cache misses (mirrored from the sharded cache).
    pub const PLAN_CACHE_MISSES: &str = "systolic_plan_cache_misses";
    /// Gauge: plan-cache evictions (mirrored from the sharded cache).
    pub const PLAN_CACHE_EVICTIONS: &str = "systolic_plan_cache_evictions";
    /// Gauge: hardware threads visible to the process.
    pub const HW_THREADS: &str = "systolic_hw_threads";
    /// Counter: edit batches applied to incremental analyzer sessions.
    pub const INCREMENTAL_EDITS: &str = "systolic_analyzer_incremental_edits_total";
    /// Counter: edits that reused at least one stage artifact.
    pub const INCREMENTAL_HITS: &str = "systolic_analyzer_incremental_hits_total";
    /// Counter: edits that fell back to from-scratch analysis, labeled
    /// `reason`.
    pub const INCREMENTAL_FALLBACKS: &str = "systolic_analyzer_incremental_fallbacks_total";
    /// Counter: cells marked dirty across all edit batches.
    pub const INCREMENTAL_DIRTY_CELLS: &str = "systolic_analyzer_incremental_dirty_cells_total";
    /// Counter: stage artifacts reused across edits, labeled `stage`.
    pub const INCREMENTAL_STAGE_REUSED: &str = "systolic_analyzer_incremental_stage_reused_total";
    /// Histogram: wall time for one incremental edit application, in
    /// microseconds.
    pub const INCREMENTAL_EDIT_DURATION: &str =
        "systolic_analyzer_incremental_edit_duration_micros";
    /// Gauge: live entries in the service's incremental session table.
    pub const INCREMENTAL_SESSIONS: &str = "systolic_service_incremental_sessions";
    /// Counter: incremental sessions evicted from the service table.
    pub const INCREMENTAL_SESSION_EVICTIONS: &str =
        "systolic_service_incremental_session_evictions_total";
    /// Gauge: per-pair route LRU hits (mirrored from the compiled
    /// topology).
    pub const ROUTE_CACHE_HITS: &str = "systolic_route_cache_hits";
    /// Gauge: per-pair route LRU misses (mirrored from the compiled
    /// topology).
    pub const ROUTE_CACHE_MISSES: &str = "systolic_route_cache_misses";
    /// Counter: cached plan outcomes restored from a snapshot load.
    pub const SNAPSHOT_LOADED_PLANS: &str = "systolic_service_snapshot_loaded_plans_total";
    /// Counter: incremental seed inputs restored from a snapshot load.
    pub const SNAPSHOT_LOADED_SEEDS: &str = "systolic_service_snapshot_loaded_seeds_total";
    /// Counter: snapshot entries dropped during load, labeled `reason`
    /// (config-skewed or individually invalid entries — the load itself
    /// still succeeds).
    pub const SNAPSHOT_DROPPED: &str = "systolic_service_snapshot_dropped_total";
    /// Counter: whole snapshot loads rejected (corrupt, truncated or
    /// version-skewed files; the daemon keeps serving cold).
    pub const SNAPSHOT_LOAD_REJECTED: &str = "systolic_service_snapshot_load_rejected_total";
    /// Counter: snapshots written (flag-triggered, autosave or wire op).
    pub const SNAPSHOT_SAVES: &str = "systolic_service_snapshot_saves_total";
    /// Gauge: bytes in the most recently written snapshot.
    pub const SNAPSHOT_SAVE_BYTES: &str = "systolic_service_snapshot_save_bytes";
    /// Histogram: wall time for one snapshot load, in microseconds.
    pub const SNAPSHOT_LOAD_DURATION: &str = "systolic_service_snapshot_load_duration_micros";
    /// Histogram: wall time for one snapshot save, in microseconds.
    pub const SNAPSHOT_SAVE_DURATION: &str = "systolic_service_snapshot_save_duration_micros";
    /// Counter: cache hits served from snapshot-warmed entries.
    pub const SNAPSHOT_WARM_HITS: &str = "systolic_service_snapshot_warm_hits_total";
}

/// The shared observability bundle: one registry + one tracer, passed
/// around as `Arc<Obs>`.
#[derive(Debug, Default)]
pub struct Obs {
    registry: Registry,
    tracer: Tracer,
}

impl Obs {
    /// Creates a bundle with the default trace-ring capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bundle whose trace ring keeps at most `capacity` spans.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Self {
            registry: Registry::new(),
            tracer: Tracer::new(capacity),
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_wires_registry_and_tracer() {
        let obs = Obs::with_trace_capacity(8);
        obs.registry().counter(names::SERVICE_REQUESTS).inc();
        let trace = obs.tracer().new_trace();
        let span = obs.tracer().start(trace, None, "request");
        obs.tracer().finish(span);
        assert_eq!(
            obs.registry()
                .snapshot()
                .counter_value(names::SERVICE_REQUESTS, &[]),
            1
        );
        assert_eq!(obs.tracer().snapshot().len(), 1);
    }
}
